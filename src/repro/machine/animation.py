"""Animation-rate modelling: the full frame loop including data reads.

Tables 1 and 2 time only steps 2 and 3 of the pipeline; an *interactive*
application also pays step 1 — "this step may typically occur anywhere
between 5 and 15 times a second" (section 2) — and step 4.  This module
composes per-frame times from the texture-generation makespan plus the
data-read transfer and a display cost, answering whether a configuration
sustains the steering loop's frame-rate budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import MachineError
from repro.machine.costs import CostModel
from repro.machine.schedule import TimingResult, simulate_texture
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig


@dataclass(frozen=True)
class AnimationTiming:
    """Per-frame breakdown of the interactive loop."""

    read_s: float
    synthesis_s: float
    display_s: float

    @property
    def frame_s(self) -> float:
        return self.read_s + self.synthesis_s + self.display_s

    @property
    def frames_per_second(self) -> float:
        return 1.0 / self.frame_s if self.frame_s > 0 else float("inf")

    def meets_budget(self, min_hz: float = 5.0) -> bool:
        """Does the loop sustain the §2 data-update budget?"""
        return self.frames_per_second >= min_hz


def data_bytes_for_grid(grid_shape: "tuple[int, int]") -> int:
    """Bytes of one vector-field frame: (ny, nx) cells x 2 floats x 4 B.

    Matches the wire-format convention of :mod:`repro.glsim.commands`.
    """
    ny, nx = grid_shape
    if ny < 1 or nx < 1:
        raise MachineError(f"invalid grid shape {(ny, nx)}")
    return ny * nx * 2 * 4


def simulate_animation(
    config: WorkstationConfig,
    workload: SpotWorkload,
    costs: Optional[CostModel] = None,
    data_bytes: Optional[int] = None,
    display_s: float = 0.002,
    **kwargs,
) -> "tuple[AnimationTiming, TimingResult]":
    """Model one steady-state animation frame.

    Parameters
    ----------
    data_bytes:
        Size of the per-frame data read; defaults to the workload's grid
        (the simulation output crossing the bus into processor memory).
    display_s:
        Fixed cost of mapping the final texture onto the scene (step 4);
        cheap because the texture is already resident on a pipe.

    Returns the per-frame timing and the underlying texture-generation
    result.
    """
    costs = costs or CostModel.onyx2()
    if display_s < 0:
        raise MachineError("display_s must be >= 0")
    if data_bytes is None:
        shape = workload.grid_shape if workload.grid_shape != (0, 0) else (64, 64)
        data_bytes = data_bytes_for_grid(shape)
    if data_bytes < 0:
        raise MachineError("data_bytes must be >= 0")
    synthesis = simulate_texture(config, workload, costs=costs, **kwargs)
    timing = AnimationTiming(
        read_s=costs.transfer_time(data_bytes),
        synthesis_s=synthesis.makespan_s,
        display_s=display_s,
    )
    return timing, synthesis


def pipelined_rate(
    config: WorkstationConfig,
    workload: SpotWorkload,
    costs: Optional[CostModel] = None,
    tiled: bool = False,
) -> "tuple[float, float]":
    """Steady-state rate with frame pipelining — the conclusion's headroom.

    The paper generates frames strictly one after another: every resource
    waits while the partial textures are blended sequentially, so the
    frame time is ``max(cpu, pipe) + c``.  Nothing stops the *next*
    frame's particle advection and spot shaping from starting during the
    current frame's blend (the blend needs one processor and the pipes'
    output buffers, not the whole machine).  In steady state the period
    is then the *largest single resource load*:

        period = max(cpu_work / nP, pipe_work / nG, c)

    and the sequential ``c`` term stops eating into throughput until it
    itself becomes the bottleneck — "higher speeds than presented in the
    paper are possible" (section 6), quantified.

    Returns ``(frames_per_second, sequential_frames_per_second)`` so
    callers can report the speedup.
    """
    costs = costs or CostModel.onyx2()
    sequential = simulate_texture(config, workload, costs=costs, tiled=tiled)

    n_pipes = config.n_pipes
    dup = 1.0
    if tiled and sequential.workload.n_spots:
        dup = 1.0 + sequential.duplicated_spots / workload.n_spots
    n_batches = -(-workload.n_spots * dup // 50)
    cpu_work = (
        costs.shape_time(int(workload.n_spots * dup), int(workload.total_vertices * dup))
        + costs.feed_time(int(workload.total_vertices * dup))
        + n_batches * costs.dispatch_s
    )
    pipe_work = costs.pipe_time(
        int(workload.total_vertices * dup), workload.total_pixels * dup
    )
    partial_pixels = (
        workload.texture_pixels // n_pipes if tiled else workload.texture_pixels
    )
    blend_total = n_pipes * costs.blend_time(partial_pixels)

    period = max(
        cpu_work / config.n_processors,
        pipe_work / n_pipes,
        blend_total,
    )
    return 1.0 / period, sequential.textures_per_second
