"""Workstation performance model (figure 4 of the paper).

The paper's evaluation machine — an SGI Onyx2 with 8 R10000 processors,
4 InfiniteReality pipes and an 800 MB/s bus — no longer exists to run on,
so this package simulates it: a deterministic discrete-event model whose
actors are processors (master + slaves per process group), a shared bus,
graphics pipes and the sequential blend stage.  Costs are charged per
unit of *counted* work (vertices shaped, vertices scan-converted, pixels
filled, bytes moved, batches dispatched), with constants calibrated once
against the (1 processor, 1 pipe) cells of Tables 1 and 2; everything
else in the tables is *predicted* by the model.

The closed forms of the paper — eq 2.1 (sequential overlap) and eq 3.2
(divide-and-conquer bound) — are implemented in
:mod:`repro.machine.analytic` and serve as cross-checks on the simulator.
"""

from repro.machine.events import Simulator, Resource, Store, Timeout
from repro.machine.costs import CostModel
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig
from repro.machine.schedule import simulate_texture, TimingResult, sweep_configurations
from repro.machine.analytic import eq21_time, eq32_time
from repro.machine.animation import AnimationTiming, pipelined_rate, simulate_animation

__all__ = [
    "Simulator",
    "Resource",
    "Store",
    "Timeout",
    "CostModel",
    "SpotWorkload",
    "WorkstationConfig",
    "simulate_texture",
    "TimingResult",
    "sweep_configurations",
    "eq21_time",
    "eq32_time",
    "AnimationTiming",
    "simulate_animation",
]
