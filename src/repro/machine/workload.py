"""Workload descriptions for the performance model.

A :class:`SpotWorkload` captures everything the cost model needs to know
about one texture generation: how many spots, how heavy each spot is on
the processors (vertices to generate), on the pipe (vertices to transform
and pixels to fill) and on the bus (bytes per spot).  The two evaluation
workloads of the paper are provided as constructors with the exact
parameters quoted in sections 5.1 and 5.2.

:func:`workload_from_config` translates a live synthesis configuration
into a workload, so the same per-unit costs that reproduce Tables 1 and
2 can price a serving request or a decomposition plan.  (It lives here —
rather than in :mod:`repro.core.synthesizer`, which re-exports it — so
the planner and runtime can price work without importing the synthesis
facade.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import MachineError
from repro.glsim.commands import BYTES_PER_FLOAT, FLOATS_PER_VERTEX

#: The implementation's arrays are float64, unlike the 4-byte GL vertex
#: stream modelled by :data:`BYTES_PER_FLOAT`.
_BYTES_FLOAT64 = 8

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import SpotNoiseConfig
    from repro.fields.vectorfield import VectorField2D

#: Grid shape assumed by :func:`workload_from_config` when no field is
#: supplied — matches the analytic demo fields' default resolution and is
#: used consistently for spot-coverage estimates *and* the workload's
#: ``grid_shape`` (read-rate costs), for both spot modes.
DEFAULT_WORKLOAD_GRID_SHAPE = (64, 64)


@dataclass(frozen=True)
class SpotWorkload:
    """One texture generation's worth of spot work.

    Attributes
    ----------
    name:
        Label used in reports.
    n_spots:
        Spots per texture.
    vertices_per_spot:
        Mesh vertices each spot contributes (4 for standard spots; mesh
        rows x columns for bent spots).
    quads_per_spot:
        Quadrilaterals each spot contributes.
    pixels_per_spot:
        Average pixels each spot covers on the final texture (scan
        conversion cost driver).
    texture_size:
        Final texture resolution (square).
    grid_shape:
        (ny, nx) of the data grid, for documentation and data-read sizing.
    """

    name: str
    n_spots: int
    vertices_per_spot: int
    quads_per_spot: int
    pixels_per_spot: float
    texture_size: int = 512
    grid_shape: "tuple[int, int]" = (0, 0)

    def __post_init__(self) -> None:
        if self.n_spots <= 0:
            raise MachineError(f"n_spots must be positive, got {self.n_spots}")
        if self.vertices_per_spot < 4:
            raise MachineError("a spot needs at least 4 vertices")
        if self.quads_per_spot < 1:
            raise MachineError("a spot needs at least 1 quad")
        if self.pixels_per_spot <= 0:
            raise MachineError("pixels_per_spot must be positive")
        if self.texture_size < 1:
            raise MachineError("texture_size must be positive")

    # -- totals ---------------------------------------------------------------
    @property
    def total_vertices(self) -> int:
        return self.n_spots * self.vertices_per_spot

    @property
    def total_quads(self) -> int:
        return self.n_spots * self.quads_per_spot

    @property
    def total_pixels(self) -> float:
        return self.n_spots * self.pixels_per_spot

    @property
    def texture_pixels(self) -> int:
        return self.texture_size * self.texture_size

    def bytes_per_spot(self) -> int:
        """Bus bytes per spot: vertex stream (x, y, u, v floats) + intensity."""
        return self.vertices_per_spot * FLOATS_PER_VERTEX * BYTES_PER_FLOAT + BYTES_PER_FLOAT

    @property
    def total_bytes(self) -> int:
        """Raw geometric data per texture — 31 MB for the DNS workload (§5.2)."""
        return self.n_spots * self.bytes_per_spot()

    @property
    def field_bytes(self) -> int:
        """Raw field data bytes: ``ny * nx`` float64 ``(u, v)`` pairs.

        This is what a pickling process backend re-ships to every group
        on every frame, and what the shared-memory backend publishes
        once per field epoch — the dominant term the decomposition
        planner charges against inter-process backends.
        """
        ny, nx = self.grid_shape
        return int(ny) * int(nx) * 2 * _BYTES_FLOAT64

    @property
    def particle_bytes(self) -> int:
        """Per-frame particle state bytes: (x, y) positions + intensity."""
        return self.n_spots * 3 * _BYTES_FLOAT64

    # -- the paper's workloads --------------------------------------------------
    @classmethod
    def atmospheric(cls) -> "SpotWorkload":
        """Section 5.1: 53x55 wind grid, 2500 bent spots, 32x17 meshes.

        ``pixels_per_spot``: a bent spot spans about 4 grid cells along the
        flow and 1.2 across on a 53-wide grid mapped to 512 pixels, i.e.
        roughly (4/53*512) x (1.2/53*512) ~ 450 pixels.
        """
        return cls(
            name="atmospheric",
            n_spots=2500,
            vertices_per_spot=32 * 17,
            quads_per_spot=31 * 16,
            pixels_per_spot=450.0,
            texture_size=512,
            grid_shape=(55, 53),
        )

    @classmethod
    def turbulence(cls) -> "SpotWorkload":
        """Section 5.2: 278x208 DNS grid, 40 000 bent spots, 16x3 meshes.

        Spots are much smaller (about 3 cells x 0.8 cell on a 278-wide
        grid): roughly 11 pixels each.
        """
        return cls(
            name="turbulence",
            n_spots=40_000,
            vertices_per_spot=16 * 3,
            quads_per_spot=15 * 2,
            pixels_per_spot=11.0,
            texture_size=512,
            grid_shape=(208, 278),
        )

    @classmethod
    def standard_spots(cls, n_spots: int, pixels_per_spot: float = 120.0, texture_size: int = 512) -> "SpotWorkload":
        """A classic (non-bent) spot noise workload: 4-vertex quads."""
        return cls(
            name="standard",
            n_spots=n_spots,
            vertices_per_spot=4,
            quads_per_spot=1,
            pixels_per_spot=pixels_per_spot,
            texture_size=texture_size,
        )

    def with_mesh(self, n_along: int, n_across: int, pixels_per_spot: "float | None" = None) -> "SpotWorkload":
        """Same workload with a different bent-spot mesh resolution.

        Used by the mesh-resolution ablation ("lower resolution meshes ...
        can increase performance substantially", §5.1).  Pixel coverage is
        a property of the spot's world-space extent, not of its tessellation,
        so it is kept unless overridden.
        """
        return SpotWorkload(
            name=f"{self.name}-{n_along}x{n_across}",
            n_spots=self.n_spots,
            vertices_per_spot=n_along * n_across,
            quads_per_spot=(n_along - 1) * (n_across - 1),
            pixels_per_spot=self.pixels_per_spot if pixels_per_spot is None else pixels_per_spot,
            texture_size=self.texture_size,
            grid_shape=self.grid_shape,
        )

    def with_spots(self, n_spots: int) -> "SpotWorkload":
        """Same workload with a different spot count (§5.2 ablation)."""
        return SpotWorkload(
            name=f"{self.name}-{n_spots}spots",
            n_spots=n_spots,
            vertices_per_spot=self.vertices_per_spot,
            quads_per_spot=self.quads_per_spot,
            pixels_per_spot=self.pixels_per_spot,
            texture_size=self.texture_size,
            grid_shape=self.grid_shape,
        )


def workload_from_config(
    config: "SpotNoiseConfig",
    field: "Optional[VectorField2D]" = None,
    grid_shape: "Optional[tuple[int, int]]" = None,
) -> SpotWorkload:
    """Translate a synthesis configuration into a machine-model workload.

    Pixel coverage per spot is estimated from the spot geometry and grid
    resolution (the same arithmetic the workload constructors use for the
    paper's two applications).  The grid comes from *field* when given,
    else from an explicit ``(ny, nx)`` *grid_shape* (the serving layer's
    latency predictor knows the shape without loading data), else from
    the documented default :data:`DEFAULT_WORKLOAD_GRID_SHAPE` — in every
    case it feeds both the per-spot coverage estimate and the workload's
    ``grid_shape``, so machine-model predictions stay self-consistent.
    """
    if field is not None:
        grid_shape = tuple(field.grid.shape)
    elif grid_shape is None:
        grid_shape = DEFAULT_WORKLOAD_GRID_SHAPE
    grid_shape = (int(grid_shape[0]), int(grid_shape[1]))
    nx = grid_shape[1]
    if config.spot_mode == "bent":
        b = config.bent
        px_per_cell = config.texture_size / nx
        pixels = max(1.0, (b.length_cells * px_per_cell) * (b.width_cells * px_per_cell))
    else:
        r_px = config.spot_radius_cells * config.texture_size / nx
        pixels = max(1.0, np.pi * r_px * r_px)
    return SpotWorkload(
        name="custom",
        n_spots=config.n_spots,
        vertices_per_spot=config.vertices_per_spot(),
        quads_per_spot=config.quads_per_spot(),
        pixels_per_spot=float(pixels),
        texture_size=config.texture_size,
        grid_shape=grid_shape,
    )
