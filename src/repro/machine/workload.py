"""Workload descriptions for the performance model.

A :class:`SpotWorkload` captures everything the cost model needs to know
about one texture generation: how many spots, how heavy each spot is on
the processors (vertices to generate), on the pipe (vertices to transform
and pixels to fill) and on the bus (bytes per spot).  The two evaluation
workloads of the paper are provided as constructors with the exact
parameters quoted in sections 5.1 and 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError
from repro.glsim.commands import BYTES_PER_FLOAT, FLOATS_PER_VERTEX


@dataclass(frozen=True)
class SpotWorkload:
    """One texture generation's worth of spot work.

    Attributes
    ----------
    name:
        Label used in reports.
    n_spots:
        Spots per texture.
    vertices_per_spot:
        Mesh vertices each spot contributes (4 for standard spots; mesh
        rows x columns for bent spots).
    quads_per_spot:
        Quadrilaterals each spot contributes.
    pixels_per_spot:
        Average pixels each spot covers on the final texture (scan
        conversion cost driver).
    texture_size:
        Final texture resolution (square).
    grid_shape:
        (ny, nx) of the data grid, for documentation and data-read sizing.
    """

    name: str
    n_spots: int
    vertices_per_spot: int
    quads_per_spot: int
    pixels_per_spot: float
    texture_size: int = 512
    grid_shape: "tuple[int, int]" = (0, 0)

    def __post_init__(self) -> None:
        if self.n_spots <= 0:
            raise MachineError(f"n_spots must be positive, got {self.n_spots}")
        if self.vertices_per_spot < 4:
            raise MachineError("a spot needs at least 4 vertices")
        if self.quads_per_spot < 1:
            raise MachineError("a spot needs at least 1 quad")
        if self.pixels_per_spot <= 0:
            raise MachineError("pixels_per_spot must be positive")
        if self.texture_size < 1:
            raise MachineError("texture_size must be positive")

    # -- totals ---------------------------------------------------------------
    @property
    def total_vertices(self) -> int:
        return self.n_spots * self.vertices_per_spot

    @property
    def total_quads(self) -> int:
        return self.n_spots * self.quads_per_spot

    @property
    def total_pixels(self) -> float:
        return self.n_spots * self.pixels_per_spot

    @property
    def texture_pixels(self) -> int:
        return self.texture_size * self.texture_size

    def bytes_per_spot(self) -> int:
        """Bus bytes per spot: vertex stream (x, y, u, v floats) + intensity."""
        return self.vertices_per_spot * FLOATS_PER_VERTEX * BYTES_PER_FLOAT + BYTES_PER_FLOAT

    @property
    def total_bytes(self) -> int:
        """Raw geometric data per texture — 31 MB for the DNS workload (§5.2)."""
        return self.n_spots * self.bytes_per_spot()

    # -- the paper's workloads --------------------------------------------------
    @classmethod
    def atmospheric(cls) -> "SpotWorkload":
        """Section 5.1: 53x55 wind grid, 2500 bent spots, 32x17 meshes.

        ``pixels_per_spot``: a bent spot spans about 4 grid cells along the
        flow and 1.2 across on a 53-wide grid mapped to 512 pixels, i.e.
        roughly (4/53*512) x (1.2/53*512) ~ 450 pixels.
        """
        return cls(
            name="atmospheric",
            n_spots=2500,
            vertices_per_spot=32 * 17,
            quads_per_spot=31 * 16,
            pixels_per_spot=450.0,
            texture_size=512,
            grid_shape=(55, 53),
        )

    @classmethod
    def turbulence(cls) -> "SpotWorkload":
        """Section 5.2: 278x208 DNS grid, 40 000 bent spots, 16x3 meshes.

        Spots are much smaller (about 3 cells x 0.8 cell on a 278-wide
        grid): roughly 11 pixels each.
        """
        return cls(
            name="turbulence",
            n_spots=40_000,
            vertices_per_spot=16 * 3,
            quads_per_spot=15 * 2,
            pixels_per_spot=11.0,
            texture_size=512,
            grid_shape=(208, 278),
        )

    @classmethod
    def standard_spots(cls, n_spots: int, pixels_per_spot: float = 120.0, texture_size: int = 512) -> "SpotWorkload":
        """A classic (non-bent) spot noise workload: 4-vertex quads."""
        return cls(
            name="standard",
            n_spots=n_spots,
            vertices_per_spot=4,
            quads_per_spot=1,
            pixels_per_spot=pixels_per_spot,
            texture_size=texture_size,
        )

    def with_mesh(self, n_along: int, n_across: int, pixels_per_spot: "float | None" = None) -> "SpotWorkload":
        """Same workload with a different bent-spot mesh resolution.

        Used by the mesh-resolution ablation ("lower resolution meshes ...
        can increase performance substantially", §5.1).  Pixel coverage is
        a property of the spot's world-space extent, not of its tessellation,
        so it is kept unless overridden.
        """
        return SpotWorkload(
            name=f"{self.name}-{n_along}x{n_across}",
            n_spots=self.n_spots,
            vertices_per_spot=n_along * n_across,
            quads_per_spot=(n_along - 1) * (n_across - 1),
            pixels_per_spot=self.pixels_per_spot if pixels_per_spot is None else pixels_per_spot,
            texture_size=self.texture_size,
            grid_shape=self.grid_shape,
        )

    def with_spots(self, n_spots: int) -> "SpotWorkload":
        """Same workload with a different spot count (§5.2 ablation)."""
        return SpotWorkload(
            name=f"{self.name}-{n_spots}spots",
            n_spots=n_spots,
            vertices_per_spot=self.vertices_per_spot,
            quads_per_spot=self.quads_per_spot,
            pixels_per_spot=self.pixels_per_spot,
            texture_size=self.texture_size,
            grid_shape=self.grid_shape,
        )
