"""Discrete-event simulation of divide-and-conquer texture generation.

One call to :func:`simulate_texture` plays out a single texture synthesis
on a :class:`~repro.machine.workstation.WorkstationConfig`:

* the spot collection is partitioned evenly over the pipes' process
  groups (optionally with spatial tiling, which duplicates border spots);
* within a group, work proceeds in batches: slaves shape batches, the
  master dispatches shaped batches to the pipe (paying dispatch and feed
  CPU time, then a bus transfer), and shapes batches itself whenever no
  dispatch is pending — the master/slave design of section 4;
* the pipe scan-converts batches FIFO, concurrently with the processors
  (the overlap of eq 2.1);
* when every pipe finishes, partial textures are read back and blended
  *sequentially* — the `c` term of eq 3.2 that breaks linear speedup.

The makespan of that schedule is the texture generation time; Tables 1
and 2 are sweeps of this function over (processors, pipes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import MachineError
from repro.machine.costs import CostModel
from repro.machine.events import Resource, Simulator, Store
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig


@dataclass(frozen=True)
class _Batch:
    """A unit of dispatched work: a handful of spots."""

    group: int
    n_spots: int
    n_vertices: int
    n_pixels: float
    n_bytes: int


@dataclass(frozen=True)
class TraceSpan:
    """One busy interval of one actor in the simulated schedule."""

    actor: str       # e.g. "g0.master", "g1.slave2", "pipe0", "bus", "blender"
    kind: str        # "shape", "feed", "transfer", "scan", "blend", "readback"
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class TimingResult:
    """Outcome of one simulated texture generation."""

    config: WorkstationConfig
    workload: SpotWorkload
    makespan_s: float
    blend_s: float
    pipe_busy_s: Dict[int, float] = field(default_factory=dict)
    cpu_busy_s: float = 0.0
    bus_busy_s: float = 0.0
    bytes_on_bus: int = 0
    duplicated_spots: int = 0
    pipe_finish_s: Dict[int, float] = field(default_factory=dict)
    trace: List[TraceSpan] = field(default_factory=list)

    def actor_utilization(self) -> Dict[str, float]:
        """Busy fraction per traced actor (empty without trace=True)."""
        if self.makespan_s <= 0:
            return {}
        busy: Dict[str, float] = {}
        for span in self.trace:
            busy[span.actor] = busy.get(span.actor, 0.0) + span.duration_s
        return {actor: t / self.makespan_s for actor, t in sorted(busy.items())}

    def format_gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart of the traced schedule (one row per actor)."""
        if not self.trace:
            return "(no trace recorded; pass trace=True to simulate_texture)"
        actors = sorted({s.actor for s in self.trace})
        scale = width / self.makespan_s
        lines = [f"0 {'-' * (width - 10)} {self.makespan_s * 1e3:.1f} ms"]
        for actor in actors:
            row = [" "] * width
            for span in self.trace:
                if span.actor != actor:
                    continue
                lo = min(int(span.start_s * scale), width - 1)
                hi = min(max(int(span.end_s * scale), lo + 1), width)
                mark = {"shape": "s", "feed": "f", "transfer": "t",
                        "scan": "#", "blend": "B", "readback": "r"}.get(span.kind, "x")
                for i in range(lo, hi):
                    row[i] = mark
            lines.append(f"{actor:>10s} |{''.join(row)}|")
        lines.append("s=shape f=feed t=bus transfer #=scan-convert r=readback B=blend")
        return "\n".join(lines)

    @property
    def textures_per_second(self) -> float:
        """The paper's headline metric (Tables 1 and 2)."""
        return 1.0 / self.makespan_s if self.makespan_s > 0 else float("inf")

    @property
    def bus_bandwidth_used_Bps(self) -> float:
        """Average bus traffic — §5.1 reports ~116 MB/s at 5.6 textures/s."""
        return self.bytes_on_bus / self.makespan_s if self.makespan_s > 0 else 0.0

    def pipe_utilization(self, pipe_id: int) -> float:
        return self.pipe_busy_s.get(pipe_id, 0.0) / self.makespan_s if self.makespan_s else 0.0


def tile_duplication(workload: SpotWorkload, n_tiles: int) -> float:
    """Fraction of extra (duplicated) spots introduced by spatial tiling.

    Tiles are vertical strips of the texture.  A spot whose centre lies
    within one spot-extent of an interior tile border must be sent to both
    neighbouring groups (section 4).  With uniformly distributed spots the
    expected duplicated fraction is ``(n_tiles - 1) * extent / width``.
    """
    if n_tiles <= 1:
        return 0.0
    extent_px = float(np.sqrt(workload.pixels_per_spot))
    frac = (n_tiles - 1) * 2.0 * extent_px / workload.texture_size
    return min(frac, 1.0)


#: Back-compat alias (the helper predates its public use by the planner).
_tile_duplication = tile_duplication


def _make_batches(
    workload: SpotWorkload, group: int, n_spots: int, batch_spots: int
) -> List[_Batch]:
    batches: List[_Batch] = []
    remaining = n_spots
    while remaining > 0:
        b = min(batch_spots, remaining)
        batches.append(
            _Batch(
                group=group,
                n_spots=b,
                n_vertices=b * workload.vertices_per_spot,
                n_pixels=b * workload.pixels_per_spot,
                n_bytes=b * workload.bytes_per_spot(),
            )
        )
        remaining -= b
    return batches


def simulate_texture(
    config: WorkstationConfig,
    workload: SpotWorkload,
    costs: Optional[CostModel] = None,
    batch_spots: int = 50,
    tiled: bool = False,
    hardware_transform: bool = False,
    trace: bool = False,
) -> TimingResult:
    """Simulate one divide-and-conquer texture generation.

    Parameters
    ----------
    config, workload, costs:
        Machine shape, spot workload and cost constants.
    batch_spots:
        Spots per dispatched work batch.
    tiled:
        Use spatial texture tiling: each pipe renders only its strip of
        the final texture into a proportionally smaller frame buffer
        (cheaper blending) but border spots are duplicated across groups
        (more spot work) — the texture-decomposition tradeoff of section 3.
    hardware_transform:
        Perform the spot transform on the pipe instead of in software: the
        pipe pays one synchronising state change per spot (footnote 1),
        but each processor-shaped vertex becomes cheaper.  The paper
        rejected this design; the ablation bench quantifies why.
    trace:
        Record a :class:`TraceSpan` for every busy interval of every
        actor; enables :meth:`TimingResult.format_gantt` and
        :meth:`TimingResult.actor_utilization`.
    """
    if costs is None:
        costs = CostModel.onyx2()
    if costs.bus_bandwidth_Bps != config.bus_bandwidth_Bps:
        costs = costs.with_overrides(bus_bandwidth_Bps=config.bus_bandwidth_Bps)
    if batch_spots < 1:
        raise MachineError(f"batch_spots must be >= 1, got {batch_spots}")

    sim = Simulator()
    bus = Resource(sim, capacity=1)
    n_groups = config.n_pipes
    group_procs = config.processors_per_group()

    dup = tile_duplication(workload, n_groups) if tiled else 0.0
    spots_per_group = [workload.n_spots // n_groups] * n_groups
    for g in range(workload.n_spots % n_groups):
        spots_per_group[g] += 1
    duplicated = int(round(workload.n_spots * dup))
    for g in range(n_groups):
        spots_per_group[g] += duplicated // n_groups

    # Software transform charges the transform to cpu_vertex_s (already
    # included); hardware transform moves ~35% of the per-vertex CPU cost
    # onto the pipe and adds one synchronising state change per spot.
    cpu_vertex = costs.cpu_vertex_s * (0.65 if hardware_transform else 1.0)
    syncs_per_spot = 1 if hardware_transform else 0

    pipe_busy: Dict[int, float] = {g: 0.0 for g in range(n_groups)}
    pipe_finish: Dict[int, float] = {}
    cpu_busy = [0.0]
    bytes_on_bus = [0]
    pipe_done_events = [sim.event() for _ in range(n_groups)]
    spans: List[TraceSpan] = []

    def record(actor: str, kind: str, start: float, end: float) -> None:
        if trace:
            spans.append(TraceSpan(actor, kind, start, end))

    # Sequential preprocessing: distribute spots over process-group regions
    # (section 4).  Only needed when there is more than one group.
    preprocess = costs.preprocess_spot_s * workload.n_spots if n_groups > 1 else 0.0

    for g in range(n_groups):
        batches = _make_batches(workload, g, spots_per_group[g], batch_spots)
        todo: Store = Store(sim)
        ready: Store = Store(sim)
        for b in batches:
            todo.put(b)
        pipe_in: Store = Store(sim)
        n_batches = len(batches)
        n_slaves = group_procs[g] - 1
        start_delay = preprocess + costs.coordination_s * n_slaves

        def transfer_to_pipe(batch, pipe_in):
            # DMA-style transfer: holds the (shared, FIFO) bus but not the
            # master; grant order preserves dispatch order per group.
            start = sim.now
            yield from bus.held(costs.transfer_time(batch.n_bytes))
            record("bus", "transfer", max(start, sim.now - costs.transfer_time(batch.n_bytes)), sim.now)
            bytes_on_bus[0] += batch.n_bytes
            pipe_in.put(batch)

        def master(g=g, todo=todo, ready=ready, pipe_in=pipe_in, n_batches=n_batches, start_delay=start_delay):
            actor = f"g{g}.master"
            yield sim.timeout(start_delay)
            dispatched = 0
            while dispatched < n_batches:
                if len(ready):
                    batch = (yield ready.get())
                elif len(todo):
                    batch = (yield todo.get())
                    shape = batch.n_spots * costs.cpu_spot_s + batch.n_vertices * cpu_vertex
                    t0 = sim.now
                    yield sim.timeout(shape)
                    record(actor, "shape", t0, sim.now)
                    cpu_busy[0] += shape
                else:
                    batch = (yield ready.get())
                feed = costs.dispatch_s + costs.feed_time(batch.n_vertices)
                t0 = sim.now
                yield sim.timeout(feed)
                record(actor, "feed", t0, sim.now)
                cpu_busy[0] += feed
                sim.process(transfer_to_pipe(batch, pipe_in))
                dispatched += 1

        def slave(k, todo=todo, ready=ready, start_delay=start_delay, g=g):
            actor = f"g{g}.slave{k}"
            yield sim.timeout(start_delay)
            while len(todo):
                batch = (yield todo.get())
                shape = batch.n_spots * costs.cpu_spot_s + batch.n_vertices * cpu_vertex
                t0 = sim.now
                yield sim.timeout(shape)
                record(actor, "shape", t0, sim.now)
                cpu_busy[0] += shape
                ready.put(batch)

        def pipe(g=g, pipe_in=pipe_in, n_batches=n_batches, done=pipe_done_events[g]):
            actor = f"pipe{g}"
            for _ in range(n_batches):
                batch = (yield pipe_in.get())
                t = costs.pipe_time(
                    batch.n_vertices, batch.n_pixels, batch.n_spots * syncs_per_spot
                )
                t0 = sim.now
                yield sim.timeout(t)
                record(actor, "scan", t0, sim.now)
                pipe_busy[g] += t
            pipe_finish[g] = sim.now
            done.succeed()

        sim.process(master())
        for k in range(n_slaves):
            sim.process(slave(k))
        sim.process(pipe())

    # Gather and blend: sequential, after all pipes complete (section 4:
    # "these textures are gathered and blended to form the final texture").
    blend_total = [0.0]
    partial_pixels = (
        workload.texture_pixels // n_groups if tiled else workload.texture_pixels
    )

    def blender():
        for ev in pipe_done_events:
            if not ev.triggered:
                yield ev
        for g in range(n_groups):
            readback = costs.transfer_time(partial_pixels * 4)
            t0 = sim.now
            yield from bus.held(readback)
            record("blender", "readback", t0, sim.now)
            bytes_on_bus[0] += partial_pixels * 4
            t = costs.blend_time(partial_pixels)
            t0 = sim.now
            yield sim.timeout(t)
            record("blender", "blend", t0, sim.now)
            blend_total[0] += t

    sim.process(blender())
    makespan = sim.run()

    return TimingResult(
        config=config,
        workload=workload,
        makespan_s=makespan,
        blend_s=blend_total[0],
        pipe_busy_s=pipe_busy,
        cpu_busy_s=cpu_busy[0],
        bus_busy_s=bus.busy_time,
        bytes_on_bus=bytes_on_bus[0],
        duplicated_spots=duplicated,
        pipe_finish_s=pipe_finish,
        trace=spans,
    )


def sweep_configurations(
    workload: SpotWorkload,
    processor_counts: "tuple[int, ...]" = (1, 2, 4, 8),
    pipe_counts: "tuple[int, ...]" = (1, 2, 4),
    costs: Optional[CostModel] = None,
    **kwargs,
) -> Dict["tuple[int, int]", TimingResult]:
    """Reproduce a table: simulate every feasible (nP, nG) cell.

    Cells with more pipes than processors are skipped — each pipe needs a
    master — exactly the blank cells of Tables 1 and 2.
    """
    results: Dict["tuple[int, int]", TimingResult] = {}
    for np_ in processor_counts:
        for ng in pipe_counts:
            if ng > np_:
                continue
            cfg = WorkstationConfig(np_, ng)
            results[(np_, ng)] = simulate_texture(cfg, workload, costs=costs, **kwargs)
    return results


def format_table(
    results: Dict["tuple[int, int]", TimingResult],
    processor_counts: "tuple[int, ...]" = (1, 2, 4, 8),
    pipe_counts: "tuple[int, ...]" = (1, 2, 4),
) -> str:
    """Render a sweep in the layout of the paper's tables (textures/s)."""
    header = "nP\\nG " + " ".join(f"{ng:>6d}" for ng in pipe_counts)
    lines = [header]
    for np_ in processor_counts:
        cells = []
        for ng in pipe_counts:
            r = results.get((np_, ng))
            cells.append(f"{r.textures_per_second:6.1f}" if r else "      ")
        lines.append(f"{np_:>5d} " + " ".join(cells))
    return "\n".join(lines)
