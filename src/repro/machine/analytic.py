"""Closed-form cost equations of the paper.

Equation 2.1 (sequential, CPU work overlapping the graphics pipe)::

    T = max( sum_i genP_i , sum_i genT_i )

Equation 3.2 (divide and conquer)::

    T = max( sum_i genP_i / nP , sum_i genT_i / nG ) + c

These are idealisations — no dispatch cost, no bus, no coordination —
used as analytic cross-checks: the discrete-event simulator must never
beat them, and must approach them as overheads go to zero (property
tested in ``tests/machine/test_analytic.py``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MachineError
from repro.machine.costs import CostModel
from repro.machine.workload import SpotWorkload


def total_genP(workload: SpotWorkload, costs: Optional[CostModel] = None) -> float:
    """Total processor seconds to generate all spot positions and shapes."""
    costs = costs or CostModel.onyx2()
    return costs.shape_time(workload.n_spots, workload.total_vertices)


def total_genT(workload: SpotWorkload, costs: Optional[CostModel] = None) -> float:
    """Total pipe seconds to blend all spots into the texture."""
    costs = costs or CostModel.onyx2()
    return costs.pipe_time(workload.total_vertices, workload.total_pixels)


def eq21_time(workload: SpotWorkload, costs: Optional[CostModel] = None) -> float:
    """Sequential generation time of equation 2.1."""
    return max(total_genP(workload, costs), total_genT(workload, costs))


def eq32_time(
    workload: SpotWorkload,
    n_processors: int,
    n_pipes: int,
    costs: Optional[CostModel] = None,
    blend_overhead: Optional[float] = None,
) -> float:
    """Divide-and-conquer time of equation 3.2.

    *blend_overhead* is the paper's ``c``; by default it is the cost
    model's sequential blend of ``n_pipes`` full partial textures.
    """
    if n_processors < 1 or n_pipes < 1:
        raise MachineError("need at least one processor and one pipe")
    costs = costs or CostModel.onyx2()
    if blend_overhead is None:
        blend_overhead = n_pipes * costs.blend_time(workload.texture_pixels)
    return (
        max(total_genP(workload, costs) / n_processors, total_genT(workload, costs) / n_pipes)
        + blend_overhead
    )


def balanced_processors_per_pipe(
    workload: SpotWorkload, costs: Optional[CostModel] = None
) -> float:
    """The resource-balance point of section 3.

    ``T`` approaches its minimum only if ``nP`` and ``nG`` grow together;
    the ratio that keeps processors and a pipe equally busy is
    ``genP / genT`` — about 4 processors per pipe for the paper's
    workloads ("a maximum of approximately 4 processors per graphics
    pipe", section 5.1).
    """
    return total_genP(workload, costs) / total_genT(workload, costs)
