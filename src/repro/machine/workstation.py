"""Workstation configuration (figure 4).

A :class:`WorkstationConfig` is the machine shape the paper varies in its
tables: number of general processors, number of graphics pipes, bus
bandwidth.  It also owns the processor-to-pipe assignment rule of
section 4: "the available processors are partitioned evenly over the
number of graphics pipes", each pipe getting a process group of one
master plus zero or more slaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError


@dataclass(frozen=True)
class WorkstationConfig:
    """Machine shape for one simulated run."""

    n_processors: int
    n_pipes: int
    bus_bandwidth_Bps: float = 800.0e6

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise MachineError(f"need at least 1 processor, got {self.n_processors}")
        if self.n_pipes < 1:
            raise MachineError(f"need at least 1 pipe, got {self.n_pipes}")
        if self.n_pipes > self.n_processors:
            raise MachineError(
                f"each pipe needs a master processor: {self.n_pipes} pipes > "
                f"{self.n_processors} processors"
            )
        if self.bus_bandwidth_Bps <= 0:
            raise MachineError("bus bandwidth must be positive")

    @classmethod
    def onyx2(cls, n_processors: int = 8, n_pipes: int = 4) -> "WorkstationConfig":
        """The paper's machine (any sub-configuration of 8 CPUs x 4 pipes)."""
        if n_processors > 8 or n_pipes > 4:
            raise MachineError("the Onyx2 of the paper has at most 8 processors and 4 pipes")
        return cls(n_processors, n_pipes)

    def processors_per_group(self) -> "list[int]":
        """Even partition of processors over pipes (masters included).

        The first ``n_processors % n_pipes`` groups get the extra
        processor, matching an even static partition.
        """
        base, extra = divmod(self.n_processors, self.n_pipes)
        return [base + (1 if g < extra else 0) for g in range(self.n_pipes)]

    def group_sizes(self) -> "list[tuple[int, int]]":
        """Per group: (n_masters=1, n_slaves)."""
        return [(1, k - 1) for k in self.processors_per_group()]

    def describe(self) -> str:
        """Human-readable component inventory (the figure-4 boxes)."""
        groups = self.processors_per_group()
        lines = [
            f"workstation: {self.n_processors} processors, {self.n_pipes} graphics pipes",
            f"bus: {self.bus_bandwidth_Bps / 1e6:.0f} MB/s shared",
        ]
        for g, k in enumerate(groups):
            lines.append(f"  group {g}: pipe {g} <- 1 master + {k - 1} slaves")
        return "\n".join(lines)
