"""A small deterministic discrete-event simulation engine.

Processes are Python generators that yield *events*: ``Timeout`` (advance
virtual time), a :class:`Resource` request (wait for a server), or a
:class:`Store` get (wait for an item).  The engine is a classic
time-ordered event heap; ties break on insertion order, so runs are fully
deterministic — a requirement for the performance model, whose output
feeds directly into EXPERIMENTS.md.

This is a minimal simpy-alike kept dependency-free on purpose; only the
features the workstation model needs are implemented.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

from repro.errors import MachineError


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("sim", "triggered", "processed", "callbacks", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.processed = False
        self.callbacks: List[Callable[["Event"], None]] = []
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger now; callbacks run at the current simulation time."""
        if self.triggered:
            raise MachineError("event already triggered")
        self.triggered = True
        self.value = value
        self.sim._schedule(0.0, self)
        return self


class Timeout(Event):
    """An event that triggers *delay* time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float):
        if delay < 0:
            raise MachineError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        sim._schedule(delay, self)


class Process(Event):
    """Drives a generator; the process event triggers when the generator ends."""

    __slots__ = ("generator",)

    def __init__(self, sim: "Simulator", generator: Generator[Event, Any, Any]):
        super().__init__(sim)
        self.generator = generator
        # Bootstrap: resume once at the current time.
        boot = Event(sim)
        boot.callbacks.append(self._resume)
        boot.succeed()

    def _resume(self, trigger: Event) -> None:
        try:
            target = self.generator.send(trigger.value)
        except StopIteration as stop:
            if not self.triggered:
                self.value = stop.value
                self.triggered = True
                self.sim._schedule(0.0, self)
            return
        if not isinstance(target, Event):
            raise MachineError(
                f"process yielded {type(target).__name__}; processes must yield events"
            )
        target.callbacks.append(self._resume)


class Simulator:
    """The event loop: a heap of (time, sequence, event)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List["tuple[float, int, Event]"] = []
        self._seq = 0

    def _schedule(self, delay: float, event: Event) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        self._seq += 1

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        return Process(self, generator)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains (or *until*); returns end time."""
        while self._heap:
            t, _, ev = heapq.heappop(self._heap)
            if until is not None and t > until:
                self.now = until
                return self.now
            self.now = t
            ev.processed = True
            callbacks, ev.callbacks = ev.callbacks, []
            for cb in callbacks:
                cb(ev)
        return self.now


class Resource:
    """A FIFO resource with *capacity* identical servers.

    Usage inside a process::

        req = resource.request()
        yield req
        yield sim.timeout(service_time)
        resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise MachineError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiting: List[Event] = []
        #: accumulated busy time across all servers (utilisation accounting)
        self.busy_time = 0.0
        self._busy_since: "dict[int, float]" = {}

    def request(self) -> Event:
        ev = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiting.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise MachineError("release() without a matching request()")
        if self._waiting:
            nxt = self._waiting.pop(0)
            nxt.succeed()
        else:
            self.in_use -= 1

    def held(self, duration: float):
        """Generator helper: request, hold for *duration*, release.

        Accounts the hold into :attr:`busy_time`.
        """
        req = self.request()
        yield req
        yield self.sim.timeout(duration)
        self.busy_time += duration
        self.release()


class Store:
    """An unbounded FIFO item queue with blocking gets."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.pop(0).succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.pop(0))
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
