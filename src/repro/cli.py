"""Command-line interface.

Five subcommands expose the reproduction's headline artefacts without
writing any code:

* ``tables`` — regenerate Tables 1 and 2 from the machine model;
* ``predict`` — model textures/second for a chosen workstation shape and
  workload, including the interactive frame-rate budget of section 2;
* ``render`` — synthesise a spot noise texture of a built-in analytic
  field and write it as a PGM image;
* ``serve-bench`` — replay a recorded request trace (uniform, Zipf or
  scrubbing) against the texture serving subsystem and report cache hit
  rate, coalesce rate, latency percentiles and the speedup over the
  no-cache path;
* ``anim-bench`` — replay a scrub/replay trace of *animation* frames
  against the streaming subsystem (:mod:`repro.anim`) and report the
  frames/s win over the per-frame no-reuse path, plus a sampled
  bit-identity check of incremental vs one-shot frames;
* ``delta-bench`` — replay the scrub trace through the delta frame
  transport (:mod:`repro.anim.delta`) and report bytes shipped vs the
  full-texture baseline, with a bit-identity check of every decoded
  frame;
* ``plan-bench`` — price the candidate decompositions with the
  cost-model planner (host-calibrated), then run the default animation
  workload through the pickling process backend and the zero-copy
  shared-memory backend and report the frames/s speedup, with a
  bit-identity check against the serial reference;
* ``serve-node`` — run one cluster node (:mod:`repro.cluster`): a
  socket front end over a :class:`TextureService`, joined to peer
  nodes over a consistent-hash ring so each distinct frame renders
  once fleet-wide;
* ``cluster-bench`` — stand up an in-process fleet, fan a request
  trace across its nodes and report fleet-wide renders vs the no-share
  baseline (every node caching independently), with a bit-identity
  spot check against a single-node service;
* ``lint`` — run the repo-aware static-analysis gate
  (:mod:`tools.analysis`): determinism, cache-key completeness, lock
  discipline, resource lifecycle and atomic writes.

Installed as ``repro-spotnoise`` (or run ``python -m repro.cli``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.machine.animation import simulate_animation
from repro.machine.schedule import format_table, simulate_texture, sweep_configurations
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

_WORKLOADS = {
    "atmospheric": SpotWorkload.atmospheric,
    "turbulence": SpotWorkload.turbulence,
}

_FIELDS = ("vortex", "shear", "saddle", "separation", "double_gyre", "random")


def _cmd_tables(args: argparse.Namespace) -> int:
    for label, factory in (
        ("Table 1 — atmospheric pollution (textures/second)", SpotWorkload.atmospheric),
        ("Table 2 — turbulent flow (textures/second)", SpotWorkload.turbulence),
    ):
        print(label)
        print(format_table(sweep_configurations(factory())))
        print()
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    workload = _WORKLOADS[args.workload]()
    if args.spots:
        workload = workload.with_spots(args.spots)
    config = WorkstationConfig(args.processors, args.pipes)
    result = simulate_texture(config, workload, tiled=args.tiled)
    timing, _ = simulate_animation(config, workload, tiled=args.tiled)
    print(config.describe())
    print(f"workload: {workload.name}, {workload.n_spots} spots, "
          f"{workload.total_vertices / 1e6:.2f}M vertices/texture")
    print(f"texture generation: {result.textures_per_second:.2f} textures/s "
          f"({result.makespan_s * 1e3:.1f} ms/texture)")
    print(f"bus: {result.bytes_on_bus / 1e6:.1f} MB/texture, "
          f"{result.bus_bandwidth_used_Bps / 1e6:.0f} MB/s average")
    print(f"full frame loop: {timing.frames_per_second:.2f} frames/s "
          f"({'meets' if timing.meets_budget() else 'MISSES'} the 5 Hz steering budget)")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    # Imports deferred: rendering pulls in the whole pipeline.
    from repro.core.config import SpotNoiseConfig
    from repro.core.synthesizer import SpotNoiseSynthesizer
    from repro.fields import analytic
    from repro.viz.image import write_pgm

    factories = {
        "vortex": lambda: analytic.vortex_field(n=65),
        "shear": lambda: analytic.shear_field(rate=2.0, n=65),
        "saddle": lambda: analytic.saddle_field(n=65),
        "separation": lambda: analytic.separation_field(n=65),
        "double_gyre": lambda: analytic.double_gyre_field(n=48),
        "random": lambda: analytic.random_smooth_field(seed=args.seed, n=65),
    }
    field = factories[args.field]()
    config = SpotNoiseConfig(
        n_spots=args.spots or 6000,
        texture_size=args.size,
        spot_mode="standard",
        anisotropy=args.anisotropy,
        seed=args.seed,
        post_filter=args.post_filter,
        render_mode=args.render_mode,
        raster_backend=args.raster_backend,
    )
    with SpotNoiseSynthesizer(config) as synth:
        frame = synth.synthesize(field)
    write_pgm(args.output, frame.display)
    print(f"wrote {args.output} ({args.size}x{args.size}, "
          f"{config.n_spots} spots, field '{args.field}')")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    # Imports deferred: the serving stack pulls in the whole pipeline.
    from repro.core.config import SpotNoiseConfig
    from repro.fields.analytic import random_smooth_field
    from repro.service import (
        FrameRenderer,
        TextureService,
        replay,
        replay_uncached,
        scrubbing_trace,
        uniform_trace,
        zipf_trace,
    )

    config = SpotNoiseConfig(
        n_spots=args.spots,
        texture_size=args.size,
        spot_mode="standard",
        seed=args.seed,
    )

    if args.store:
        from repro.apps.dns.store import ChunkedFieldStore

        store = ChunkedFieldStore(args.store)
        n_frames = min(args.frames, len(store)) or len(store)
        source = store.read
        source_label = f"store {args.store} ({len(store)} frames)"
    else:
        n_frames = args.frames
        field_cache = {}

        def source(frame: int):
            if frame not in field_cache:
                field_cache[frame] = random_smooth_field(
                    seed=args.seed + 1000 + frame, n=args.grid
                )
            return field_cache[frame]

        source_label = f"analytic random fields ({n_frames} frames, n={args.grid})"

    makers = {
        "uniform": lambda: uniform_trace(args.requests, n_frames, seed=args.seed),
        "zipf": lambda: zipf_trace(
            args.requests, n_frames, exponent=args.zipf_exponent, seed=args.seed
        ),
        "scrub": lambda: scrubbing_trace(args.requests, n_frames, seed=args.seed),
    }
    trace = makers[args.trace]()
    distinct = len(set(trace))

    print(f"serve-bench: {args.trace} trace, {args.requests} requests over "
          f"{n_frames} frames ({distinct} distinct), {args.clients} clients")
    print(f"source: {source_label}; config: {config.n_spots} spots, "
          f"{config.texture_size}px, workers {args.workers}")

    verify_renderer = FrameRenderer(config) if args.verify else None
    with TextureService(
        source,
        config,
        n_workers=args.workers,
        memory_budget_bytes=args.mem_mb << 20,
        disk_dir=args.disk or None,
        memoize_digests=True,  # both bench sources are immutable per frame
    ) as service:
        result = replay(
            service,
            trace,
            n_clients=args.clients,
            verify_fresh=(lambda f: verify_renderer.render(source(f)))
            if verify_renderer is not None
            else None,
        )
        report = service.stats.report()
    if verify_renderer is not None:
        verify_renderer.close()

    print()
    print(report)
    print()
    print(f"cached path:   {result.throughput_rps:8.1f} req/s "
          f"({result.duration_s * 1e3:.0f} ms wall), {result.renders} renders "
          f"for {distinct} distinct frames")
    if args.verify:
        print(f"bit-identical to fresh renders: {'yes' if result.bit_identical else 'NO'}")

    baseline_n = min(len(trace), args.baseline_requests)
    baseline_renderer = FrameRenderer(config)
    baseline = replay_uncached(
        lambda f: baseline_renderer.render(source(f)),
        trace[:baseline_n],
        n_clients=args.clients,
    )
    baseline_renderer.close()
    print(f"no-cache path: {baseline.throughput_rps:8.1f} req/s "
          f"(measured on the first {baseline_n} requests)")
    speedup = (
        result.throughput_rps / baseline.throughput_rps
        if baseline.throughput_rps
        else float("inf")
    )
    print(f"speedup: {speedup:.1f}x")
    if args.verify and not result.bit_identical:
        return 1
    return 0


def _cmd_anim_bench(args: argparse.Namespace) -> int:
    # Imports deferred: the streaming stack pulls in the whole pipeline.
    import time

    from repro.anim import AnimationService, one_shot_frame
    from repro.core.config import SpotNoiseConfig
    from repro.fields.analytic import random_smooth_field
    from repro.service import replay, scrubbing_trace

    config = SpotNoiseConfig(
        n_spots=args.spots,
        texture_size=args.size,
        spot_mode="standard",
        seed=args.seed,
    )

    if args.store:
        from repro.apps.dns.store import ChunkedFieldStore

        store = ChunkedFieldStore(args.store)
        n_frames = min(args.frames, len(store)) or len(store)
        source = store.read
        source_label = f"store {args.store} ({len(store)} frames)"
    else:
        n_frames = args.frames
        field_cache = {}

        def source(frame: int):
            if frame not in field_cache:
                field_cache[frame] = random_smooth_field(
                    seed=args.seed + 1000 + frame, n=args.grid
                )
            return field_cache[frame]

        source_label = f"analytic random fields ({n_frames} frames, n={args.grid})"

    if args.trace == "replay":
        # Sequential playthroughs — the data-browser "play through any
        # part of the data base" pattern.
        trace = [t % n_frames for t in range(args.requests)]
    else:
        trace = scrubbing_trace(args.requests, n_frames, seed=args.seed)
    distinct = len(set(trace))

    print(f"anim-bench: {args.trace} trace, {args.requests} requests over "
          f"{n_frames} frames ({distinct} distinct), {args.clients} clients")
    print(f"source: {source_label}; config: {config.n_spots} spots, "
          f"{config.texture_size}px; checkpoints every {args.checkpoint_every}")

    with AnimationService(
        source,
        config,
        length=n_frames,
        checkpoint_every=args.checkpoint_every,
        memory_budget_bytes=args.mem_mb << 20,
        disk_dir=args.disk or None,
        n_workers=args.workers,
    ) as service:
        # The same shared-cursor replay harness serve-bench uses; the
        # one-shot verifier replays the frame's whole field prefix.
        result = replay(
            service,
            trace,
            n_clients=args.clients,
            verify_fresh=(
                lambda f: one_shot_frame(
                    config, source, f, dt=service.dt, runtime=service.runtime
                ).display
            )
            if args.verify_sample > 0
            else None,
            verify_sample=args.verify_sample,
        )
        report = service.stats.report()
        renders = service.stats.renders
        dt = service.dt

    streamed_fps = result.throughput_rps

    print()
    print(report)
    print()
    print(f"streamed path:  {streamed_fps:8.1f} frames/s "
          f"({result.duration_s * 1e3:.0f} ms wall), {renders} incremental "
          f"renders for {distinct} distinct frames")
    if args.verify_sample > 0:
        print(f"incremental frames bit-identical to one-shot renders: "
              f"{'yes' if result.bit_identical else 'NO'} "
              f"({min(args.verify_sample, distinct)} sampled)")

    # The per-frame no-reuse path: what a service that treats every
    # animation frame as independent must pay — a fresh pipeline and a
    # full prefix replay per request (frame t depends on fields 0..t).
    baseline_n = min(len(trace), args.baseline_requests)
    from repro.parallel.runtime import DivideAndConquerRuntime

    runtime = DivideAndConquerRuntime(config)
    t0 = time.perf_counter()
    for frame in trace[:baseline_n]:
        one_shot_frame(config, source, frame, dt=dt, runtime=runtime)
    baseline_s = time.perf_counter() - t0
    runtime.close()
    baseline_fps = baseline_n / baseline_s if baseline_s > 0 else float("inf")
    print(f"per-frame path: {baseline_fps:8.1f} frames/s "
          f"(measured on the first {baseline_n} requests, full prefix replay each)")
    speedup = streamed_fps / baseline_fps if baseline_fps else float("inf")
    print(f"speedup: {speedup:.1f}x")
    if args.verify_sample > 0 and not result.bit_identical:
        return 1
    return 0


def _cmd_delta_bench(args: argparse.Namespace) -> int:
    # Imports deferred: the streaming stack pulls in the whole pipeline.
    import time
    import zlib

    import numpy as np

    from repro.anim import AnimationService, one_shot_frame
    from repro.anim.delta import DeltaDecoder, DeltaManifest
    from repro.core.config import SpotNoiseConfig
    from repro.fields.analytic import random_smooth_field
    from repro.service import scrubbing_trace

    config = SpotNoiseConfig(
        n_spots=args.spots,
        texture_size=args.size,
        spot_mode="standard",
        seed=args.seed,
    )
    field_cache = {}

    def source(frame: int):
        if frame not in field_cache:
            field_cache[frame] = random_smooth_field(
                seed=args.seed + 1000 + frame, n=args.grid
            )
        return field_cache[frame]

    trace = scrubbing_trace(args.requests, args.frames, seed=args.seed)
    distinct = sorted(set(trace))

    print(f"delta-bench: scrub trace, {args.requests} requests over "
          f"{args.frames} frames ({len(distinct)} distinct)")
    print(f"config: {config.n_spots} spots, {config.texture_size}px; "
          f"keyframe cadence {'auto (cost-model priced)' if args.delta_every == 0 else args.delta_every}")

    textures = {}
    with AnimationService(
        source,
        config,
        length=args.frames,
        checkpoint_every=args.checkpoint_every,
        delta_every=args.delta_every,
    ) as service:
        t0 = time.perf_counter()
        for t in trace:
            response = service.request(t)
            textures.setdefault(t, response.texture)
        wall_s = time.perf_counter() - t0
        stats = service.delta_stats()
        manifest = DeltaManifest.from_dict(service.manifest()["delta"])
        store = service.delta_transport.store
        dt = service.dt

    # What a digest-sync client pays: each unique chunk ships exactly
    # once no matter how often the trace revisits a frame, plus the
    # manifest it syncs against.
    delta_bytes = stats["shipped_bytes"] + manifest.json_bytes()
    # What the full-texture transport pays: the (compressed) texture
    # bytes of the requested frame, shipped per request.
    frame_bytes = {
        t: len(zlib.compress(np.ascontiguousarray(tex, dtype=np.float64).tobytes(), 6))
        for t, tex in textures.items()
    }
    baseline_bytes = sum(frame_bytes[t] for t in trace)
    ratio = delta_bytes / baseline_bytes if baseline_bytes else float("inf")

    # Bit-identity: a fresh decoder over the published manifest must
    # reproduce every distinct frame byte-for-byte, and a sample is
    # checked against full one-shot reference renders.
    decoder = DeltaDecoder(store, manifest)
    mismatches = 0
    for t in distinct:
        decoded = decoder.decode(t)
        reference = np.ascontiguousarray(textures[t], dtype=np.float64)
        if decoded is None or decoded.tobytes() != reference.tobytes():
            mismatches += 1
    for t in distinct[: args.verify_sample]:
        reference = one_shot_frame(config, source, t, dt=dt).display
        decoded = decoder.decode(t)
        if decoded is None or not np.array_equal(decoded, reference):
            mismatches += 1

    print()
    print(f"replayed {args.requests} requests in {wall_s * 1e3:.0f} ms; "
          f"{stats['keys']} keyframes + {stats['deltas']} deltas encoded "
          f"(cadence K={stats['keyframe_every']}, "
          f"{stats['dedup_chunks']} chunks deduped)")
    print(f"delta transport: {delta_bytes:>12,d} bytes shipped "
          f"(unique chunks once + {manifest.json_bytes():,d} B manifest)")
    print(f"full-texture:    {baseline_bytes:>12,d} bytes shipped "
          f"(compressed texture per request)")
    print(f"ratio: {ratio:.3f}x (budget {args.budget:.2f}x)")
    print(f"decoded frames bit-identical: {'yes' if mismatches == 0 else 'NO'} "
          f"({len(distinct)} decoded, {min(args.verify_sample, len(distinct))} "
          f"verified against one-shot renders)")
    if mismatches or ratio > args.budget:
        return 1
    return 0


def _cmd_plan_bench(args: argparse.Namespace) -> int:
    # Imports deferred: planning + rendering pull in the whole pipeline.
    import time

    import numpy as np

    from repro.core.config import SpotNoiseConfig
    from repro.core.pipeline import SpotNoisePipeline
    from repro.fields.analytic import random_smooth_field
    from repro.machine.workload import workload_from_config
    from repro.parallel.planner import DecompositionPlanner
    from repro.parallel.runtime import DivideAndConquerRuntime, spatial_feasibility
    from repro.service.admission import LatencyPredictor

    config = SpotNoiseConfig(
        n_spots=args.spots,
        texture_size=args.size,
        spot_mode="standard",
        n_groups=args.groups,
        seed=args.seed,
    )
    field = random_smooth_field(seed=args.seed + 1000, n=args.grid)
    workload = workload_from_config(config, field)

    # Calibrate the cost model against this host with a few serial
    # frames, exactly the way the serving layer does online.
    predictor = LatencyPredictor()
    with SpotNoisePipeline(config, field) as pipe:
        for _ in range(2):
            t0 = time.perf_counter()
            pipe.step()
            predictor.observe(config, time.perf_counter() - t0,
                              grid_shape=tuple(field.grid.shape))
    scale = predictor.scale or 1.0

    planner = DecompositionPlanner(host_workers=args.host_workers or None)
    plan = planner.plan(workload, scale=scale,
                        spatial_ok=spatial_feasibility(config, field))
    print(f"plan-bench: {config.n_spots} spots, {config.texture_size}px texture, "
          f"{args.grid}x{args.grid} field, calibration scale {scale:.3g}")
    print(plan.summary())
    print()

    # The animation workload: a static field (the epoch-stable case the
    # shared-memory backend is built for), advected spots per frame.
    def run_animation(backend: str) -> float:
        cfg = config.with_overrides(backend=backend)
        with SpotNoisePipeline(cfg, field) as pipe:
            pipe.step()  # warm-up: pool spin-up + first field publish
            t0 = time.perf_counter()
            for _ in range(args.frames):
                pipe.step()
            return args.frames / (time.perf_counter() - t0)

    # Bit-identity spot check across the three backends first.
    textures = {}
    for backend in ("serial", "process", "sharedmem"):
        cfg = config.with_overrides(backend=backend)
        with SpotNoisePipeline(cfg, field) as pipe:
            textures[backend] = pipe.step().texture
    identical = all(
        np.array_equal(textures["serial"], textures[b]) for b in ("process", "sharedmem")
    )

    process_fps = run_animation("process")
    sharedmem_fps = run_animation("sharedmem")
    speedup = sharedmem_fps / process_fps if process_fps else float("inf")

    print(f"animation workload: {args.frames} frames, {args.groups} groups, "
          f"static {args.grid}x{args.grid} field")
    print(f"process backend (pickling):     {process_fps:8.2f} frames/s")
    print(f"sharedmem backend (zero-copy):  {sharedmem_fps:8.2f} frames/s")
    print(f"speedup: {speedup:.1f}x (acceptance floor 2x)")
    print(f"bit-identical to serial: {'yes' if identical else 'NO'}")
    if not identical:
        return 1
    return 0


def _cmd_serve_node(args: argparse.Namespace) -> int:
    # Imports deferred: the cluster tier pulls in the serving stack.
    import threading

    from repro.cluster import ClusterNode, TenantQuotas, analytic_source
    from repro.core.config import SpotNoiseConfig
    from repro.service import TextureService

    config = SpotNoiseConfig(
        n_spots=args.spots,
        texture_size=args.size,
        spot_mode="standard",
        seed=args.seed,
        backend=args.backend,
    )
    source = analytic_source(seed=args.seed, grid=args.grid)
    quotas = (
        TenantQuotas(rate=args.quota_rate, burst=args.quota_burst)
        if args.quota_rate > 0
        else None
    )

    peers = []
    for spec in args.peer or []:
        try:
            peer_id, _, addr = spec.partition("=")
            host, _, port = addr.rpartition(":")
            peers.append((peer_id, (host, int(port))))
            if not (peer_id and host):
                raise ValueError(spec)
        except ValueError:
            print(f"serve-node: bad --peer {spec!r} (want ID=HOST:PORT)",
                  file=sys.stderr)
            return 2

    service = TextureService(
        source,
        config,
        n_workers=args.workers,
        disk_dir=args.disk or None,
        memoize_digests=True,  # analytic source is immutable per frame
    )
    node = ClusterNode(
        args.node_id,
        service,
        host=args.host,
        port=args.port,
        quotas=quotas,
        blob_store=service.cache.disk,
    )
    try:
        node.serve()
        for peer_id, address in peers:
            node.add_peer(peer_id, address)
        host, port = node.address
        print(f"serve-node: {args.node_id} listening on {host}:{port} "
              f"({config.n_spots} spots, {config.texture_size}px, "
              f"backend {config.backend}, {len(peers)} peers)")
        sys.stdout.flush()
        stop = threading.Event()
        try:
            if args.duration > 0:
                stop.wait(args.duration)
            else:  # pragma: no cover - interactive mode, exercised manually
                while not stop.wait(3600):
                    pass
        except KeyboardInterrupt:  # pragma: no cover - interactive mode
            pass
    finally:
        node.close()
        report = service.stats.report()
        service.close()
    print(report)
    return 0


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    # Imports deferred: the cluster tier pulls in the serving stack.
    import numpy as np

    from repro.cluster import LocalFleet, analytic_source
    from repro.core.config import SpotNoiseConfig
    from repro.service import (
        FrameRenderer,
        scrubbing_trace,
        uniform_trace,
        zipf_trace,
    )

    config = SpotNoiseConfig(
        n_spots=args.spots,
        texture_size=args.size,
        spot_mode="standard",
        seed=args.seed,
        backend=args.backend,
    )
    source = analytic_source(seed=args.seed, grid=args.grid)

    makers = {
        "uniform": lambda: uniform_trace(args.requests, args.frames, seed=args.seed),
        "zipf": lambda: zipf_trace(
            args.requests, args.frames, exponent=args.zipf_exponent, seed=args.seed
        ),
        "scrub": lambda: scrubbing_trace(args.requests, args.frames, seed=args.seed),
    }
    trace = makers[args.trace]()
    distinct = len(set(trace))

    # The no-share baseline: the same trace fanned round-robin across
    # N independent single-node services, each caching only what it has
    # seen.  Count-based and deterministic — node i serves trace[i::N]
    # and renders one texture per distinct frame in its slice.
    no_share = sum(
        len(set(trace[i::args.nodes])) for i in range(args.nodes)
    )

    print(f"cluster-bench: {args.nodes} nodes, {args.trace} trace, "
          f"{args.requests} requests over {args.frames} frames "
          f"({distinct} distinct)")
    print(f"config: {config.n_spots} spots, {config.texture_size}px, "
          f"backend {config.backend}, workers {args.workers}")

    responses = {}
    with LocalFleet(
        args.nodes,
        config,
        field_source=source,
        seed=args.seed,
        n_workers=args.workers,
    ) as fleet:
        for i, frame in enumerate(trace):
            responses[frame] = fleet.request(i % args.nodes, frame)
        fleet_renders = fleet.total_renders()
        per_node = fleet.node_renders()
        forwards = fleet.total_forwards()

    print()
    print(f"fleet renders:    {fleet_renders:5d}  (per node: {per_node})")
    print(f"no-share renders: {no_share:5d}  (each node caching alone)")
    print(f"distinct frames:  {distinct:5d}  (exactly-once floor)")
    print(f"proxied hops:     {forwards:5d}")

    ok = True
    if fleet_renders > distinct:
        # Exactly-once fleet-wide is the design point; more than one
        # render per distinct frame means routing or coalescing broke.
        print(f"FAIL: {fleet_renders} renders for {distinct} distinct frames")
        ok = False
    if no_share > distinct:
        saved = 1.0 - fleet_renders / no_share
        print(f"renders saved vs no-share: {saved:.0%}")
        if fleet_renders >= no_share:
            print("FAIL: sharded fleet did not beat the no-share baseline")
            ok = False
    else:
        # Floor guard: with every node's slice already covering each
        # distinct frame at most once there is nothing to deduplicate,
        # so "beat the baseline" is unsatisfiable — not a regression.
        print("no-share baseline already at the exactly-once floor; "
              "nothing to beat (guard passes)")

    if args.verify_sample > 0:
        renderer = FrameRenderer(config)
        try:
            sample = sorted(responses)[: args.verify_sample]
            identical = all(
                np.array_equal(responses[f], renderer.render(source(f)))
                for f in sample
            )
        finally:
            renderer.close()
        print(f"bit-identical to fresh renders ({len(sample)} sampled): "
              f"{'yes' if identical else 'NO'}")
        if not identical:
            ok = False

    return 0 if ok else 1


def _cmd_lint(lint_args: Sequence[str]) -> int:
    """Forward to the static-analysis gate (``python -m tools.analysis``).

    The ``tools`` package lives at the repository root, which is not on
    ``sys.path`` when ``repro`` is imported from ``src``; fall back to
    the checkout layout (this file is ``src/repro/cli.py``).
    """
    try:
        from tools.analysis.__main__ import main as lint_main
    except ImportError:
        root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        if not os.path.isdir(os.path.join(root, "tools", "analysis")):
            print("repro-spotnoise lint: tools/analysis not found (not running "
                  "from a source checkout?)", file=sys.stderr)
            return 1
        sys.path.insert(0, root)
        from tools.analysis.__main__ import main as lint_main
    return lint_main(list(lint_args))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spotnoise",
        description="Divide and Conquer Spot Noise (SC'97) reproduction tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="regenerate the paper's Tables 1 and 2")
    p_tables.set_defaults(fn=_cmd_tables)

    p_pred = sub.add_parser("predict", help="model throughput for a machine shape")
    p_pred.add_argument("--processors", "-p", type=int, default=8)
    p_pred.add_argument("--pipes", "-g", type=int, default=4)
    p_pred.add_argument("--workload", "-w", choices=sorted(_WORKLOADS), default="atmospheric")
    p_pred.add_argument("--spots", type=int, default=0, help="override spot count")
    p_pred.add_argument("--tiled", action="store_true", help="use texture tiling")
    p_pred.set_defaults(fn=_cmd_predict)

    p_render = sub.add_parser("render", help="synthesise a texture of a built-in field")
    p_render.add_argument("--field", "-f", choices=_FIELDS, default="vortex")
    p_render.add_argument("--size", "-s", type=int, default=256)
    p_render.add_argument("--spots", "-n", type=int, default=0)
    p_render.add_argument("--anisotropy", "-a", type=float, default=2.0)
    p_render.add_argument("--seed", type=int, default=0)
    p_render.add_argument(
        "--post-filter", choices=("none", "highpass", "equalize"), default="none"
    )
    p_render.add_argument(
        "--render-mode",
        choices=("exact", "sampled"),
        default="sampled",
        help="anti-aliased splatting (default) or exact scanline coverage",
    )
    p_render.add_argument(
        "--raster-backend",
        choices=("exact", "batched"),
        default="batched",
        help="exact-mode implementation: vectorised batch or per-quad reference",
    )
    p_render.add_argument("--output", "-o", default="spotnoise.pgm")
    p_render.set_defaults(fn=_cmd_render)

    p_serve = sub.add_parser(
        "serve-bench",
        help="replay a request trace against the texture serving subsystem",
    )
    p_serve.add_argument(
        "--trace", choices=("uniform", "zipf", "scrub"), default="zipf",
        help="request arrival pattern over the frame range",
    )
    p_serve.add_argument("--requests", "-n", type=int, default=256)
    p_serve.add_argument("--frames", type=int, default=32, help="distinct frame range")
    p_serve.add_argument("--clients", "-c", type=int, default=4,
                         help="concurrent client threads")
    p_serve.add_argument("--workers", type=int, default=2, help="render workers")
    p_serve.add_argument("--spots", type=int, default=800)
    p_serve.add_argument("--size", type=int, default=128, help="texture size (px)")
    p_serve.add_argument("--grid", type=int, default=48, help="analytic field grid n")
    p_serve.add_argument("--mem-mb", type=int, default=64, help="memory tier budget")
    p_serve.add_argument("--disk", default="", help="optional disk cache directory")
    p_serve.add_argument("--store", default="",
                         help="serve frames from a ChunkedFieldStore directory "
                              "instead of analytic fields")
    p_serve.add_argument("--zipf-exponent", type=float, default=1.1)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--baseline-requests", type=int, default=64,
                         help="trace prefix length timed on the no-cache path")
    p_serve.add_argument("--no-verify", dest="verify", action="store_false",
                         help="skip the cached-vs-fresh bit-identity check")
    p_serve.set_defaults(fn=_cmd_serve_bench, verify=True)

    p_anim = sub.add_parser(
        "anim-bench",
        help="replay an animation trace against the streaming subsystem",
    )
    p_anim.add_argument(
        "--trace", choices=("scrub", "replay"), default="scrub",
        help="slider scrubbing (random walk with jumps) or sequential replay",
    )
    p_anim.add_argument("--requests", "-n", type=int, default=256)
    p_anim.add_argument("--frames", type=int, default=64, help="sequence length")
    p_anim.add_argument("--clients", "-c", type=int, default=2,
                        help="concurrent client threads")
    p_anim.add_argument("--workers", type=int, default=1,
                        help="render-walk worker threads")
    p_anim.add_argument("--spots", type=int, default=800)
    p_anim.add_argument("--size", type=int, default=128, help="texture size (px)")
    p_anim.add_argument("--grid", type=int, default=48, help="analytic field grid n")
    p_anim.add_argument("--checkpoint-every", type=int, default=8,
                        help="pipeline-state checkpoint interval (frames)")
    p_anim.add_argument("--mem-mb", type=int, default=64, help="memory tier budget")
    p_anim.add_argument("--disk", default="", help="optional disk cache directory")
    p_anim.add_argument("--store", default="",
                        help="stream frames from a ChunkedFieldStore directory "
                             "instead of analytic fields")
    p_anim.add_argument("--seed", type=int, default=0)
    p_anim.add_argument("--baseline-requests", type=int, default=24,
                        help="trace prefix length timed on the no-reuse path")
    p_anim.add_argument("--verify-sample", type=int, default=3,
                        help="frames re-rendered one-shot for the bit-identity "
                             "check (0 disables)")
    p_anim.set_defaults(fn=_cmd_anim_bench)

    p_delta = sub.add_parser(
        "delta-bench",
        help="replay the scrub trace through the delta frame transport and "
             "report bytes shipped vs the full-texture baseline",
    )
    p_delta.add_argument("--requests", "-n", type=int, default=256)
    p_delta.add_argument("--frames", type=int, default=64, help="sequence length")
    p_delta.add_argument("--spots", type=int, default=800)
    p_delta.add_argument("--size", type=int, default=128, help="texture size (px)")
    p_delta.add_argument("--grid", type=int, default=48, help="analytic field grid n")
    p_delta.add_argument("--checkpoint-every", type=int, default=8,
                         help="pipeline-state checkpoint interval (frames)")
    p_delta.add_argument("--delta-every", type=int, default=0,
                         help="keyframe cadence K (0 = priced automatically "
                              "by the cost model)")
    p_delta.add_argument("--seed", type=int, default=0)
    p_delta.add_argument("--budget", type=float, default=1 / 3,
                         help="fail when delta bytes exceed this fraction of "
                              "the full-texture baseline")
    p_delta.add_argument("--verify-sample", type=int, default=3,
                         help="decoded frames also compared against full "
                              "one-shot reference renders")
    p_delta.set_defaults(fn=_cmd_delta_bench)

    p_plan = sub.add_parser(
        "plan-bench",
        help="price decompositions with the planner, bench sharedmem vs process",
    )
    p_plan.add_argument("--spots", type=int, default=800)
    p_plan.add_argument("--size", type=int, default=96, help="texture size (px)")
    p_plan.add_argument("--grid", type=int, default=321,
                        help="analytic field grid n (field bytes drive the "
                             "pickling cost the zero-copy backend avoids)")
    p_plan.add_argument("--frames", type=int, default=16,
                        help="animation frames timed per backend")
    p_plan.add_argument("--groups", type=int, default=4,
                        help="process groups for the backend comparison "
                             "(the pickling backend re-ships the field to "
                             "every group)")
    p_plan.add_argument("--host-workers", type=int, default=0,
                        help="override the planner's host parallelism "
                             "(0 = use os.cpu_count())")
    p_plan.add_argument("--seed", type=int, default=0)
    p_plan.set_defaults(fn=_cmd_plan_bench)

    p_node = sub.add_parser(
        "serve-node",
        help="run one cluster node: a socket front end over a texture "
             "service, sharded across peers by consistent hashing",
    )
    p_node.add_argument("--node-id", default="node-0",
                        help="stable identity on the hash ring")
    p_node.add_argument("--host", default="127.0.0.1")
    p_node.add_argument("--port", type=int, default=0,
                        help="listen port (0 = ephemeral, printed on start)")
    p_node.add_argument("--peer", action="append", metavar="ID=HOST:PORT",
                        help="peer node to join (repeatable)")
    p_node.add_argument("--workers", type=int, default=2, help="render workers")
    p_node.add_argument("--spots", type=int, default=400)
    p_node.add_argument("--size", type=int, default=64, help="texture size (px)")
    p_node.add_argument("--grid", type=int, default=32, help="analytic field grid n")
    p_node.add_argument(
        "--backend", choices=("serial", "thread", "process", "sharedmem"),
        default="serial",
        help="render backend; every node in a fleet must use the same "
             "explicit backend so fingerprints (and therefore routing) agree",
    )
    p_node.add_argument("--disk", default="", help="optional disk cache directory")
    p_node.add_argument("--seed", type=int, default=0)
    p_node.add_argument("--quota-rate", type=float, default=0.0,
                        help="per-tenant sustained requests/s (0 = no quotas)")
    p_node.add_argument("--quota-burst", type=float, default=32.0,
                        help="per-tenant burst allowance")
    p_node.add_argument("--duration", type=float, default=0.0,
                        help="serve for this many seconds then exit "
                             "(0 = until interrupted)")
    p_node.set_defaults(fn=_cmd_serve_node)

    p_cluster = sub.add_parser(
        "cluster-bench",
        help="fan a request trace across an in-process fleet and compare "
             "fleet-wide renders against the no-share baseline",
    )
    p_cluster.add_argument("--nodes", type=int, default=2, help="fleet size")
    p_cluster.add_argument(
        "--trace", choices=("uniform", "zipf", "scrub"), default="scrub",
        help="request arrival pattern over the frame range",
    )
    p_cluster.add_argument("--requests", "-n", type=int, default=192)
    p_cluster.add_argument("--frames", type=int, default=48,
                           help="distinct frame range")
    p_cluster.add_argument("--workers", type=int, default=2,
                           help="render workers per node")
    p_cluster.add_argument("--spots", type=int, default=300)
    p_cluster.add_argument("--size", type=int, default=64,
                           help="texture size (px)")
    p_cluster.add_argument("--grid", type=int, default=32,
                           help="analytic field grid n")
    p_cluster.add_argument(
        "--backend", choices=("serial", "thread", "process", "sharedmem"),
        default="serial",
        help="render backend shared by every node in the fleet",
    )
    p_cluster.add_argument("--zipf-exponent", type=float, default=1.1)
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument("--verify-sample", type=int, default=3,
                           help="frames re-rendered one-shot for the "
                                "bit-identity check (0 disables)")
    p_cluster.set_defaults(fn=_cmd_cluster_bench)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo's static-analysis gate (tools/analysis)",
    )
    p_lint.add_argument(
        "lint_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to `python -m tools.analysis` "
             "(paths, --rule, --format, --write-baseline, --list-rules, ...)",
    )
    p_lint.set_defaults(fn=lambda args: _cmd_lint(args.lint_args))

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `lint` forwards its whole tail verbatim; route around argparse so
    # option-like arguments (--rule, --format=json) reach the gate
    # untouched instead of tripping REMAINDER's leading-dash quirks.
    if argv and argv[0] == "lint":
        return _cmd_lint(argv[1:])
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
