"""Command-line interface.

Three subcommands expose the reproduction's headline artefacts without
writing any code:

* ``tables`` — regenerate Tables 1 and 2 from the machine model;
* ``predict`` — model textures/second for a chosen workstation shape and
  workload, including the interactive frame-rate budget of section 2;
* ``render`` — synthesise a spot noise texture of a built-in analytic
  field and write it as a PGM image.

Installed as ``repro-spotnoise`` (or run ``python -m repro.cli``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.machine.animation import simulate_animation
from repro.machine.schedule import format_table, simulate_texture, sweep_configurations
from repro.machine.workload import SpotWorkload
from repro.machine.workstation import WorkstationConfig

_WORKLOADS = {
    "atmospheric": SpotWorkload.atmospheric,
    "turbulence": SpotWorkload.turbulence,
}

_FIELDS = ("vortex", "shear", "saddle", "separation", "double_gyre", "random")


def _cmd_tables(args: argparse.Namespace) -> int:
    for label, factory in (
        ("Table 1 — atmospheric pollution (textures/second)", SpotWorkload.atmospheric),
        ("Table 2 — turbulent flow (textures/second)", SpotWorkload.turbulence),
    ):
        print(label)
        print(format_table(sweep_configurations(factory())))
        print()
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    workload = _WORKLOADS[args.workload]()
    if args.spots:
        workload = workload.with_spots(args.spots)
    config = WorkstationConfig(args.processors, args.pipes)
    result = simulate_texture(config, workload, tiled=args.tiled)
    timing, _ = simulate_animation(config, workload, tiled=args.tiled)
    print(config.describe())
    print(f"workload: {workload.name}, {workload.n_spots} spots, "
          f"{workload.total_vertices / 1e6:.2f}M vertices/texture")
    print(f"texture generation: {result.textures_per_second:.2f} textures/s "
          f"({result.makespan_s * 1e3:.1f} ms/texture)")
    print(f"bus: {result.bytes_on_bus / 1e6:.1f} MB/texture, "
          f"{result.bus_bandwidth_used_Bps / 1e6:.0f} MB/s average")
    print(f"full frame loop: {timing.frames_per_second:.2f} frames/s "
          f"({'meets' if timing.meets_budget() else 'MISSES'} the 5 Hz steering budget)")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    # Imports deferred: rendering pulls in the whole pipeline.
    from repro.core.config import SpotNoiseConfig
    from repro.core.synthesizer import SpotNoiseSynthesizer
    from repro.fields import analytic
    from repro.viz.image import write_pgm

    factories = {
        "vortex": lambda: analytic.vortex_field(n=65),
        "shear": lambda: analytic.shear_field(rate=2.0, n=65),
        "saddle": lambda: analytic.saddle_field(n=65),
        "separation": lambda: analytic.separation_field(n=65),
        "double_gyre": lambda: analytic.double_gyre_field(n=48),
        "random": lambda: analytic.random_smooth_field(seed=args.seed, n=65),
    }
    field = factories[args.field]()
    config = SpotNoiseConfig(
        n_spots=args.spots or 6000,
        texture_size=args.size,
        spot_mode="standard",
        anisotropy=args.anisotropy,
        seed=args.seed,
        post_filter=args.post_filter,
        render_mode=args.render_mode,
        raster_backend=args.raster_backend,
    )
    with SpotNoiseSynthesizer(config) as synth:
        frame = synth.synthesize(field)
    write_pgm(args.output, frame.display)
    print(f"wrote {args.output} ({args.size}x{args.size}, "
          f"{config.n_spots} spots, field '{args.field}')")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spotnoise",
        description="Divide and Conquer Spot Noise (SC'97) reproduction tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="regenerate the paper's Tables 1 and 2")
    p_tables.set_defaults(fn=_cmd_tables)

    p_pred = sub.add_parser("predict", help="model throughput for a machine shape")
    p_pred.add_argument("--processors", "-p", type=int, default=8)
    p_pred.add_argument("--pipes", "-g", type=int, default=4)
    p_pred.add_argument("--workload", "-w", choices=sorted(_WORKLOADS), default="atmospheric")
    p_pred.add_argument("--spots", type=int, default=0, help="override spot count")
    p_pred.add_argument("--tiled", action="store_true", help="use texture tiling")
    p_pred.set_defaults(fn=_cmd_predict)

    p_render = sub.add_parser("render", help="synthesise a texture of a built-in field")
    p_render.add_argument("--field", "-f", choices=_FIELDS, default="vortex")
    p_render.add_argument("--size", "-s", type=int, default=256)
    p_render.add_argument("--spots", "-n", type=int, default=0)
    p_render.add_argument("--anisotropy", "-a", type=float, default=2.0)
    p_render.add_argument("--seed", type=int, default=0)
    p_render.add_argument(
        "--post-filter", choices=("none", "highpass", "equalize"), default="none"
    )
    p_render.add_argument(
        "--render-mode",
        choices=("exact", "sampled"),
        default="sampled",
        help="anti-aliased splatting (default) or exact scanline coverage",
    )
    p_render.add_argument(
        "--raster-backend",
        choices=("exact", "batched"),
        default="batched",
        help="exact-mode implementation: vectorised batch or per-quad reference",
    )
    p_render.add_argument("--output", "-o", default="spotnoise.pgm")
    p_render.set_defaults(fn=_cmd_render)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
