"""Texture quality metrics.

The paper's quality statements are visual ("very accurate renderings",
"less accurate renderings"); the ablation benches need numbers.  This
module provides the comparison tools: radially averaged power spectra,
spectral distance between textures, and a structural-similarity score —
all dependency-free.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.errors import ReproError


def _check_pair(a: np.ndarray, b: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or a.shape != b.shape:
        raise ReproError(f"textures must be equal-shape 2-D arrays, got {a.shape} vs {b.shape}")
    return a, b


def radial_power_spectrum(texture: np.ndarray, n_bins: int = 32) -> "tuple[np.ndarray, np.ndarray]":
    """Radially averaged power spectrum.

    Returns ``(k, power)``: bin-centre spatial frequencies (cycles/pixel)
    and mean spectral power per bin.  The spot radius sets where the
    spectrum rolls off — the quantitative version of "properties of the
    spot directly control the properties of the texture".
    """
    t = np.asarray(texture, dtype=np.float64)
    if t.ndim != 2:
        raise ReproError(f"texture must be 2-D, got shape {t.shape}")
    if n_bins < 2:
        raise ReproError(f"n_bins must be >= 2, got {n_bins}")
    spec = np.abs(np.fft.fftshift(np.fft.fft2(t - t.mean()))) ** 2
    ky = np.fft.fftshift(np.fft.fftfreq(t.shape[0]))[:, None]
    kx = np.fft.fftshift(np.fft.fftfreq(t.shape[1]))[None, :]
    k = np.hypot(kx, ky)
    edges = np.linspace(0.0, 0.5, n_bins + 1)
    idx = np.clip(np.digitize(k.ravel(), edges) - 1, 0, n_bins - 1)
    power = np.bincount(idx, weights=spec.ravel(), minlength=n_bins)
    counts = np.bincount(idx, minlength=n_bins)
    centres = 0.5 * (edges[:-1] + edges[1:])
    with np.errstate(invalid="ignore", divide="ignore"):
        mean_power = np.where(counts > 0, power / counts, 0.0)
    return centres, mean_power


def spectral_distance(a: np.ndarray, b: np.ndarray, n_bins: int = 32) -> float:
    """L1 distance between normalised radial spectra, in [0, 2].

    Invariant to intensity scaling and to spatial arrangement — it
    compares the *statistics* of two textures, which is the right notion
    of distance for stochastic spot noise (two seeds of the same
    configuration measure ~0 apart, different spot sizes measure far).
    """
    a, b = _check_pair(a, b)
    _, pa = radial_power_spectrum(a, n_bins)
    _, pb = radial_power_spectrum(b, n_bins)
    sa, sb = pa.sum(), pb.sum()
    if sa == 0 or sb == 0:
        return 0.0 if sa == sb else 2.0
    return float(np.abs(pa / sa - pb / sb).sum())


def temporal_coherence(frames: "list[np.ndarray]") -> float:
    """Mean correlation between consecutive frames, in [-1, 1].

    Spot noise animation works because advected particles keep the
    texture *coherent* between frames — the eye tracks moving structure
    instead of seeing flicker.  Re-randomising spot positions every frame
    (the ``"rerandomize"`` life-cycle mode) destroys the coherence even
    though each frame individually looks the same; this metric separates the
    two regimes.
    """
    if len(frames) < 2:
        raise ReproError("need at least 2 frames to measure coherence")
    correlations = []
    for a, b in zip(frames, frames[1:]):
        a, b = _check_pair(a, b)
        da = a - a.mean()
        db = b - b.mean()
        denom = np.sqrt((da**2).sum() * (db**2).sum())
        correlations.append(float((da * db).sum() / denom) if denom > 0 else 0.0)
    return float(np.mean(correlations))


def ssim(a: np.ndarray, b: np.ndarray, sigma: float = 2.0) -> float:
    """Mean structural similarity between two textures, in [-1, 1].

    The standard Gaussian-window SSIM with the usual stabilisers, with
    the dynamic range taken from the data.  Used by the mesh-resolution
    ablation to score degradation against the reference mesh.
    """
    a, b = _check_pair(a, b)
    if sigma <= 0:
        raise ReproError(f"sigma must be positive, got {sigma}")
    drange = max(a.max() - a.min(), b.max() - b.min(), 1e-12)
    c1 = (0.01 * drange) ** 2
    c2 = (0.03 * drange) ** 2

    blur = lambda x: ndimage.gaussian_filter(x, sigma=sigma, mode="nearest")
    mu_a = blur(a)
    mu_b = blur(b)
    var_a = blur(a * a) - mu_a**2
    var_b = blur(b * b) - mu_b**2
    cov = blur(a * b) - mu_a * mu_b

    num = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    den = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    return float((num / den).mean())
