"""Minimal netpbm image IO (no imaging dependencies).

Textures and composed scenes are written as binary PGM (grayscale) and
PPM (RGB).  Arrays follow the library's y-up convention; images are
flipped to the y-down raster order of the file formats on write and
flipped back on read, so a save/load round trip is the identity.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import ReproError
from repro.utils.fileio import atomic_write_bytes

PathLike = Union[str, os.PathLike]


def to_uint8(values01: np.ndarray) -> np.ndarray:
    """Quantise [0, 1] floats to uint8 with clipping and rounding."""
    v = np.asarray(values01, dtype=np.float64)
    return np.clip(np.rint(v * 255.0), 0, 255).astype(np.uint8)


def write_pgm(path: PathLike, texture01: np.ndarray) -> None:
    """Write a [0, 1] grayscale array as binary PGM (P5), atomically."""
    t = np.asarray(texture01, dtype=np.float64)
    if t.ndim != 2:
        raise ReproError(f"PGM needs a 2-D array, got shape {t.shape}")
    data = to_uint8(t)[::-1]  # y-up -> y-down
    h, w = data.shape
    header = f"P5\n{w} {h}\n255\n".encode("ascii")
    atomic_write_bytes(path, header + data.tobytes())


def write_ppm(path: PathLike, rgb01: np.ndarray) -> None:
    """Write a [0, 1] (H, W, 3) RGB array as binary PPM (P6), atomically."""
    img = np.asarray(rgb01, dtype=np.float64)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ReproError(f"PPM needs an (H, W, 3) array, got shape {img.shape}")
    data = to_uint8(img)[::-1]
    h, w = data.shape[:2]
    header = f"P6\n{w} {h}\n255\n".encode("ascii")
    atomic_write_bytes(path, header + data.tobytes())


def read_pgm(path: PathLike) -> np.ndarray:
    """Read a binary PGM written by :func:`write_pgm`; returns [0, 1] floats."""
    with open(path, "rb") as fh:
        magic = fh.readline().strip()
        if magic != b"P5":
            raise ReproError(f"{path} is not a binary PGM (magic {magic!r})")
        # Skip comment lines.
        line = fh.readline()
        while line.startswith(b"#"):
            line = fh.readline()
        try:
            w, h = (int(x) for x in line.split())
            maxval = int(fh.readline())
        except ValueError as exc:
            raise ReproError(f"malformed PGM header in {path}") from exc
        if maxval != 255:
            raise ReproError(f"only 8-bit PGM supported, got maxval {maxval}")
        raw = fh.read(w * h)
    if len(raw) != w * h:
        raise ReproError(f"truncated PGM data in {path}")
    data = np.frombuffer(raw, dtype=np.uint8).reshape(h, w)
    return data[::-1].astype(np.float64) / 255.0
