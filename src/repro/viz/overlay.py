"""Scene composition: scalar and mask overlays on spot noise textures.

Reproduces the figure-6 construction: the wind-field spot noise texture
in grayscale, the pollutant concentration draped over it in rainbow
colours with concentration-dependent opacity, and the map of Europe as a
mask outline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ReproError
from repro.raster.blend import blend_over
from repro.viz.colormap import Colormap, grayscale


def _as_texture01(texture: np.ndarray) -> np.ndarray:
    t = np.asarray(texture, dtype=np.float64)
    if t.ndim != 2:
        raise ReproError(f"texture must be 2-D, got shape {t.shape}")
    return np.clip(t, 0.0, 1.0)


def scalar_overlay(
    texture01: np.ndarray,
    scalar01: np.ndarray,
    colormap: Colormap,
    max_alpha: float = 0.65,
) -> np.ndarray:
    """Drape a normalised scalar field over a normalised texture.

    The scalar's value drives both its colour (through *colormap*) and its
    opacity (0 where the scalar is 0, *max_alpha* where it is 1), so the
    flow texture stays visible underneath low concentrations — the effect
    visible in figure 6.

    Both inputs are (H, W) arrays in [0, 1]; output is (H, W, 3) RGB.
    """
    tex = _as_texture01(texture01)
    sca = np.asarray(scalar01, dtype=np.float64)
    if sca.shape != tex.shape:
        raise ReproError(f"scalar shape {sca.shape} != texture shape {tex.shape}")
    if not (0.0 <= max_alpha <= 1.0):
        raise ReproError(f"max_alpha must be in [0, 1], got {max_alpha}")
    sca = np.clip(sca, 0.0, 1.0)
    base = grayscale()(tex)
    colour = colormap(sca)
    alpha = (sca * max_alpha)[..., None]
    return blend_over(base, colour, alpha)


def mask_overlay(
    rgb: np.ndarray,
    mask: np.ndarray,
    colour: "tuple[float, float, float]" = (0.1, 0.1, 0.1),
    alpha: float = 0.8,
    outline_only: bool = True,
) -> np.ndarray:
    """Draw a boolean mask (e.g. coastlines) over an RGB image.

    With *outline_only* the mask border (mask pixels adjacent to non-mask
    pixels) is drawn — the map-of-Europe line work of figure 6; otherwise
    the filled mask is blended.
    """
    img = np.asarray(rgb, dtype=np.float64)
    if img.ndim != 3 or img.shape[2] != 3:
        raise ReproError(f"rgb must be (H, W, 3), got {img.shape}")
    m = np.asarray(mask, dtype=bool)
    if m.shape != img.shape[:2]:
        raise ReproError(f"mask shape {m.shape} != image shape {img.shape[:2]}")
    if outline_only:
        interior = np.zeros_like(m)
        interior[1:-1, 1:-1] = (
            m[1:-1, 1:-1] & m[:-2, 1:-1] & m[2:, 1:-1] & m[1:-1, :-2] & m[1:-1, 2:]
        )
        m = m & ~interior
    out = img.copy()
    col = np.asarray(colour, dtype=np.float64)
    out[m] = out[m] * (1.0 - alpha) + col * alpha
    return out


def compose_scene(
    texture01: np.ndarray,
    scalar01: Optional[np.ndarray] = None,
    colormap: Optional[Colormap] = None,
    mask: Optional[np.ndarray] = None,
    max_alpha: float = 0.65,
) -> np.ndarray:
    """Full figure-6 style composition: texture + scalar drape + map mask."""
    tex = _as_texture01(texture01)
    if scalar01 is not None:
        if colormap is None:
            raise ReproError("a colormap is required to overlay a scalar")
        rgb = scalar_overlay(tex, scalar01, colormap, max_alpha)
    else:
        rgb = grayscale()(tex)
    if mask is not None:
        rgb = mask_overlay(rgb, mask)
    return rgb
