"""Rendering helpers: colormaps, overlays, image IO, texture statistics.

This is pipeline step 4 ("render scene"): mapping the synthesised
texture, optionally with a scalar field draped over it (figure 6 shows O3
concentration over the wind texture) and a geography mask, to a
displayable image.  The statistics module quantifies texture anisotropy,
which the tests use to verify that spot noise actually encodes the flow.
"""

from repro.viz.colormap import Colormap, rainbow, grayscale, diverging, get_colormap
from repro.viz.overlay import scalar_overlay, mask_overlay, compose_scene
from repro.viz.image import write_pgm, write_ppm, read_pgm, to_uint8
from repro.viz.stats import (
    texture_statistics,
    anisotropy_direction,
    directional_energy,
    TextureStats,
)
from repro.viz.quality import (
    radial_power_spectrum,
    spectral_distance,
    ssim,
    temporal_coherence,
)

__all__ = [
    "Colormap",
    "rainbow",
    "grayscale",
    "diverging",
    "get_colormap",
    "scalar_overlay",
    "mask_overlay",
    "compose_scene",
    "write_pgm",
    "write_ppm",
    "read_pgm",
    "to_uint8",
    "texture_statistics",
    "anisotropy_direction",
    "directional_energy",
    "TextureStats",
    "radial_power_spectrum",
    "spectral_distance",
    "ssim",
    "temporal_coherence",
]
