"""Colormaps.

Figure 6 uses "a rainbow colormap ... for assigning colors to the
pollutant"; that map plus a grayscale and a diverging map are provided.
A :class:`Colormap` is a piecewise-linear interpolation through control
colours, vectorised over arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class Colormap:
    """Piecewise-linear colormap over [0, 1].

    Parameters
    ----------
    name:
        Registry name.
    controls:
        ``(K, 3)`` RGB control points in [0, 1], evenly spaced over the
        domain.
    """

    def __init__(self, name: str, controls: np.ndarray):
        controls = np.asarray(controls, dtype=np.float64)
        if controls.ndim != 2 or controls.shape[1] != 3 or controls.shape[0] < 2:
            raise ReproError(f"controls must be (K>=2, 3), got {controls.shape}")
        if controls.min() < 0.0 or controls.max() > 1.0:
            raise ReproError("control colours must lie in [0, 1]")
        self.name = name
        self.controls = controls

    def __call__(self, values: np.ndarray) -> np.ndarray:
        """Map values in [0, 1] (clipped) to RGB; output shape ``(..., 3)``."""
        v = np.clip(np.asarray(values, dtype=np.float64), 0.0, 1.0)
        k = self.controls.shape[0]
        x = v * (k - 1)
        i0 = np.minimum(x.astype(np.int64), k - 2)
        t = (x - i0)[..., None]
        return self.controls[i0] * (1.0 - t) + self.controls[i0 + 1] * t


def rainbow() -> Colormap:
    """Blue -> cyan -> green -> yellow -> red, the classic rainbow of figure 6."""
    return Colormap(
        "rainbow",
        np.array(
            [
                [0.0, 0.0, 1.0],
                [0.0, 1.0, 1.0],
                [0.0, 1.0, 0.0],
                [1.0, 1.0, 0.0],
                [1.0, 0.0, 0.0],
            ]
        ),
    )


def grayscale() -> Colormap:
    return Colormap("grayscale", np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]))


def diverging() -> Colormap:
    """Blue -> white -> red; for signed scalars such as vorticity."""
    return Colormap(
        "diverging",
        np.array([[0.12, 0.23, 0.75], [1.0, 1.0, 1.0], [0.85, 0.14, 0.12]]),
    )


_REGISTRY = {"rainbow": rainbow, "grayscale": grayscale, "diverging": diverging}


def get_colormap(name: str) -> Colormap:
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ReproError(f"unknown colormap {name!r}; available: {sorted(_REGISTRY)}") from None
