"""Quantitative texture statistics.

Spot noise works because the texture's second-order statistics inherit
the spot shape: stretching spots along the flow correlates the texture
along the flow.  These diagnostics measure that effect, giving the test
suite an *objective* check that the synthesised textures encode the
vector field (instead of eyeballing figures):

* :func:`anisotropy_direction` recovers the dominant correlation
  direction from the power spectrum — for a uniform flow it must match
  the flow angle;
* :func:`directional_energy` integrates spectral energy per direction;
* :func:`texture_statistics` bundles mean/variance/extrema, which the
  zero-mean property of spot intensities constrains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class TextureStats:
    mean: float
    std: float
    min: float
    max: float
    rms: float

    def is_roughly_zero_mean(self, tolerance_sigmas: float = 5.0) -> bool:
        """Mean within *tolerance_sigmas* standard errors of zero.

        The spot intensities ``a_i`` have zero mean (section 2), so the
        texture mean is a zero-mean random variable; its standard error is
        estimated crudely from the pixel std and an effective sample count.
        """
        if self.std == 0:
            return self.mean == 0
        return abs(self.mean) <= tolerance_sigmas * self.std


def texture_statistics(texture: np.ndarray) -> TextureStats:
    t = np.asarray(texture, dtype=np.float64)
    if t.ndim != 2:
        raise ReproError(f"texture must be 2-D, got shape {t.shape}")
    return TextureStats(
        mean=float(t.mean()),
        std=float(t.std()),
        min=float(t.min()),
        max=float(t.max()),
        rms=float(np.sqrt((t**2).mean())),
    )


def _power_spectrum(texture: np.ndarray) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Centered power spectrum and its (kx, ky) frequency grids."""
    t = np.asarray(texture, dtype=np.float64)
    if t.ndim != 2:
        raise ReproError(f"texture must be 2-D, got shape {t.shape}")
    t = t - t.mean()
    spec = np.fft.fftshift(np.abs(np.fft.fft2(t)) ** 2)
    ky = np.fft.fftshift(np.fft.fftfreq(t.shape[0]))[:, None]
    kx = np.fft.fftshift(np.fft.fftfreq(t.shape[1]))[None, :]
    return spec, np.broadcast_to(kx, spec.shape), np.broadcast_to(ky, spec.shape)


def anisotropy_direction(texture: np.ndarray) -> "tuple[float, float]":
    """Dominant correlation direction and its strength.

    Returns ``(angle, strength)``: *angle* in ``(-pi/2, pi/2]`` is the
    direction along which the texture is most elongated (for spot noise in
    a uniform flow: the flow direction modulo pi); *strength* in [0, 1] is
    the spectral anisotropy (0 = isotropic).

    Method: the spectral second-moment tensor.  Energy of a texture
    stretched along direction d concentrates *perpendicular* to d in
    frequency space, so the elongation direction is the *minor* eigenvector
    of the tensor.
    """
    spec, kx, ky = _power_spectrum(texture)
    w = spec.sum()
    if w <= 0:
        return 0.0, 0.0
    mxx = float((spec * kx * kx).sum() / w)
    myy = float((spec * ky * ky).sum() / w)
    mxy = float((spec * kx * ky).sum() / w)
    m = np.array([[mxx, mxy], [mxy, myy]])
    evals, evecs = np.linalg.eigh(m)  # ascending
    minor = evecs[:, 0]  # least spectral spread = elongation direction
    angle = float(np.arctan2(minor[1], minor[0]))
    if angle <= -np.pi / 2:
        angle += np.pi
    elif angle > np.pi / 2:
        angle -= np.pi
    lam_min, lam_max = float(evals[0]), float(evals[1])
    strength = 0.0 if lam_max <= 0 else 1.0 - lam_min / lam_max
    return angle, strength


def directional_energy(texture: np.ndarray, n_bins: int = 36) -> np.ndarray:
    """Spectral energy integrated per direction bin over [0, pi).

    Bin ``i`` covers angles ``[i, i+1) * pi / n_bins`` of the *frequency*
    vector; a texture elongated along angle a has an energy minimum near
    ``a`` and maximum near ``a + pi/2``.
    """
    if n_bins < 2:
        raise ReproError(f"n_bins must be >= 2, got {n_bins}")
    spec, kx, ky = _power_spectrum(texture)
    angles = np.mod(np.arctan2(ky, kx), np.pi)
    bins = np.minimum((angles / np.pi * n_bins).astype(np.int64), n_bins - 1)
    dc = (kx == 0) & (ky == 0)
    energy = np.bincount(bins[~dc].ravel(), weights=spec[~dc].ravel(), minlength=n_bins)
    total = energy.sum()
    return energy / total if total > 0 else energy
