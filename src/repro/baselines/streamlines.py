"""Streamline plots: the discrete-curve baseline."""

from __future__ import annotations

import numpy as np

from repro.advection.streamline import streamline_bundle
from repro.errors import ReproError
from repro.fields.vectorfield import VectorField2D
from repro.raster.framebuffer import FrameBuffer
from repro.raster.splat import splat_points


def streamline_plot(
    field: VectorField2D,
    texture_size: int = 512,
    n_seeds: int = 64,
    n_steps: int = 200,
    value: float = 1.0,
    seed: "int | None" = 0,
) -> np.ndarray:
    """Render streamlines from a jittered seed lattice.

    Curves are integrated bidirectionally with RK4 and splatted with
    sub-pixel sample spacing; intensity is per-sample-normalised so long
    and short streamlines have equal visual weight per unit length.
    """
    if n_seeds < 1:
        raise ReproError(f"n_seeds must be >= 1, got {n_seeds}")
    if n_steps < 2:
        raise ReproError(f"n_steps must be >= 2, got {n_steps}")
    from repro.spots.distribution import jittered_grid_positions

    fb = FrameBuffer(texture_size, texture_size, field.grid.bounds)
    seeds = jittered_grid_positions(n_seeds, field.grid.bounds, seed=seed)
    vmax = field.max_magnitude()
    if vmax <= 0:
        return fb.data
    # Step ~half a pixel of arc per integration step.
    px_world = min(*fb.pixel_size)
    dt = 0.5 * px_world / vmax
    curves = streamline_bundle(field.sample, seeds, n_steps, dt, integrator="rk4")
    pts = curves.reshape(-1, 2)
    weights = np.full(pts.shape[0], value / (n_steps + 1))
    splat_points(fb, pts, weights)
    return fb.data
