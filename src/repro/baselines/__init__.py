"""Baseline flow-visualisation techniques.

Spot noise's claims are relative to alternatives, so the alternatives
are implemented too:

* :mod:`arrowplot` — what the smog application used *before* spot noise
  ("In [6] arrow plots were used to display the wind fields, which we
  have now replaced with spot noise textures");
* :mod:`streamlines` — the classic discrete-position technique the
  introduction contrasts with texture;
* :mod:`lic` — Line Integral Convolution, the texture technique that
  historically superseded spot noise; included as the modern comparator;
* :mod:`sequential` — single-processor single-pipe spot noise (eq 2.1),
  the performance baseline the divide-and-conquer speedups are measured
  against.
"""

from repro.baselines.arrowplot import arrow_plot
from repro.baselines.streamlines import streamline_plot
from repro.baselines.lic import lic_texture
from repro.baselines.sequential import sequential_spot_noise

__all__ = ["arrow_plot", "streamline_plot", "lic_texture", "sequential_spot_noise"]
