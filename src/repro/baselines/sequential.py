"""Sequential spot noise: the eq 2.1 performance baseline.

Identical output to the divide-and-conquer runtime (one group, serial
backend); exists so benches can report D&C speedups against an unambiguous
single-processor, single-pipe reference, with the corresponding eq 2.1
model prediction alongside.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.fields.vectorfield import VectorField2D
from repro.machine.analytic import eq21_time
from repro.machine.costs import CostModel
from repro.core.synthesizer import workload_from_config
from repro.parallel.runtime import DivideAndConquerRuntime, RuntimeReport


def sequential_spot_noise(
    field: VectorField2D,
    config: SpotNoiseConfig,
    particles: Optional[ParticleSet] = None,
    costs: Optional[CostModel] = None,
) -> "tuple[np.ndarray, RuntimeReport, float]":
    """Render one texture sequentially.

    Returns ``(texture, report, modelled_eq21_seconds)``: the actual
    texture and runtime accounting, plus the time eq 2.1 predicts for the
    same workload on the calibrated Onyx2 — the row the speedup tables
    normalise against.
    """
    seq_config = config.with_overrides(n_groups=1, backend="serial", partition="round_robin")
    if particles is None:
        particles = ParticleSet.uniform_random(
            seq_config.n_spots, field.grid.bounds, seed=seq_config.seed,
            intensity=seq_config.intensity,
        )
    with DivideAndConquerRuntime(seq_config) as runtime:
        texture, report = runtime.synthesize(field, particles)
    modelled = eq21_time(workload_from_config(seq_config, field), costs)
    return texture, report, modelled
