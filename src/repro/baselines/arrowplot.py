"""Arrow plots: the discrete-glyph baseline.

Arrows visualise the field only at discrete seed points — exactly the
weakness the paper's introduction holds against them ("texture can give a
continuous view of a 2D field opposed to visualization at only discrete
positions, as with arrow plots or streamlines").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.fields.vectorfield import VectorField2D
from repro.raster.framebuffer import FrameBuffer
from repro.raster.splat import splat_points


def _draw_segments(
    fb: FrameBuffer, starts: np.ndarray, ends: np.ndarray, value: float = 1.0
) -> None:
    """Draw world-space line segments by dense point splatting.

    Sample spacing is half a pixel along each segment, so lines are
    continuous at any angle; intensity per sample is normalised by the
    per-segment sample count so all segments have comparable weight.
    """
    pix = fb.world_to_pixel(ends) - fb.world_to_pixel(starts)
    lengths_px = np.hypot(pix[:, 0], pix[:, 1])
    n_samples = np.maximum(2, np.ceil(lengths_px * 2.0).astype(np.int64))
    max_n = int(n_samples.max())
    t = np.linspace(0.0, 1.0, max_n)
    # Sample all segments at max_n points; mask out beyond per-segment count.
    pts = starts[:, None, :] + t[None, :, None] * (ends - starts)[:, None, :]
    valid = t[None, :] <= (n_samples[:, None] - 1) / (max_n - 1) if max_n > 1 else np.ones((starts.shape[0], 1), bool)
    weights = np.where(valid, value / n_samples[:, None], 0.0)
    splat_points(fb, pts.reshape(-1, 2), weights.ravel())


def arrow_plot(
    field: VectorField2D,
    texture_size: int = 512,
    grid_step: int = 16,
    scale: float = 0.9,
    head_fraction: float = 0.3,
) -> np.ndarray:
    """Render a classic arrow plot of *field*.

    Parameters
    ----------
    texture_size:
        Output raster resolution (square).
    grid_step:
        Pixel spacing of the arrow seed lattice.
    scale:
        Shaft length of the fastest arrow, in units of the seed spacing.
    head_fraction:
        Head size relative to the shaft.

    Returns a ``(texture_size, texture_size)`` intensity raster.
    """
    if grid_step < 2:
        raise ReproError(f"grid_step must be >= 2, got {grid_step}")
    if not (0.0 < head_fraction < 1.0):
        raise ReproError(f"head_fraction must be in (0, 1), got {head_fraction}")
    fb = FrameBuffer(texture_size, texture_size, field.grid.bounds)
    sx, sy = fb.pixel_size

    px = np.arange(grid_step // 2, texture_size, grid_step)
    X, Y = np.meshgrid(px + 0.5, px + 0.5)
    seeds = fb.pixel_to_world(X.ravel(), Y.ravel())

    vel = field.sample(seeds)
    speed = np.hypot(vel[:, 0], vel[:, 1])
    vmax = speed.max()
    if vmax <= 0:
        return fb.data
    # Arrow length proportional to speed, capped at scale * seed spacing.
    length = scale * grid_step * min(sx, sy) * (speed / vmax)
    safe = np.where(speed > 0, speed, 1.0)
    dirs = vel / safe[:, None]
    tips = seeds + dirs * length[:, None]

    keep = speed > 0.05 * vmax
    seeds, tips, dirs, length = seeds[keep], tips[keep], dirs[keep], length[keep]
    if seeds.shape[0] == 0:
        return fb.data

    _draw_segments(fb, seeds, tips)
    # Two head barbs at +-150 degrees from the direction.
    for sign in (1.0, -1.0):
        ang = sign * np.deg2rad(150.0)
        c, s = np.cos(ang), np.sin(ang)
        barb = np.stack(
            [c * dirs[:, 0] - s * dirs[:, 1], s * dirs[:, 0] + c * dirs[:, 1]], axis=-1
        )
        _draw_segments(fb, tips, tips + barb * (head_fraction * length)[:, None])
    return fb.data
