"""Line Integral Convolution (Cabral & Leedom, SIGGRAPH '93).

LIC is the texture technique that ultimately displaced spot noise in
practice, so it is the natural quality/performance comparator for this
reproduction.  The implementation is the standard fixed-length form —
white noise convolved along streamlines through every pixel — fully
vectorised: all pixels integrate in lockstep, one RK2 step per iteration
over the whole pixel lattice.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.fields.vectorfield import VectorField2D
from repro.utils.rng import as_rng


def lic_texture(
    field: VectorField2D,
    texture_size: int = 512,
    kernel_half_length: int = 15,
    noise: "np.ndarray | None" = None,
    seed: "int | None" = 0,
) -> np.ndarray:
    """Compute a LIC image of *field* on a ``texture_size``^2 raster.

    Parameters
    ----------
    kernel_half_length:
        Convolution half-length L in pixels; the box kernel spans
        ``2L + 1`` samples along the streamline through each pixel.
    noise:
        Optional input noise texture (defaults to uniform white noise).

    Returns the convolved texture, range [0, 1]-ish (mean ~ noise mean).
    """
    if texture_size < 8:
        raise ReproError(f"texture_size must be >= 8, got {texture_size}")
    if kernel_half_length < 1:
        raise ReproError(f"kernel_half_length must be >= 1, got {kernel_half_length}")
    rng = as_rng(seed)
    if noise is None:
        noise = rng.uniform(0.0, 1.0, size=(texture_size, texture_size))
    noise = np.asarray(noise, dtype=np.float64)
    if noise.shape != (texture_size, texture_size):
        raise ReproError(f"noise must be ({texture_size}, {texture_size}), got {noise.shape}")

    x0, x1, y0, y1 = field.grid.bounds
    sx = (x1 - x0) / texture_size
    sy = (y1 - y0) / texture_size
    px = x0 + (np.arange(texture_size) + 0.5) * sx
    py = y0 + (np.arange(texture_size) + 0.5) * sy
    X, Y = np.meshgrid(px, py)
    start = np.stack([X.ravel(), Y.ravel()], axis=-1)

    vmax = field.max_magnitude()
    if vmax <= 0:
        return noise.copy()
    step = 0.8 * min(sx, sy)  # arc length per sample, slightly sub-pixel

    def sample_noise(points: np.ndarray) -> np.ndarray:
        ix = np.clip(((points[:, 0] - x0) / sx).astype(np.int64), 0, texture_size - 1)
        iy = np.clip(((points[:, 1] - y0) / sy).astype(np.int64), 0, texture_size - 1)
        return noise[iy, ix]

    def unit_velocity(points: np.ndarray) -> np.ndarray:
        v = field.sample(points)
        speed = np.hypot(v[:, 0], v[:, 1])
        safe = np.where(speed > 1e-12, speed, 1.0)
        v = v / safe[:, None]
        v[speed <= 1e-12] = 0.0
        return v

    total = sample_noise(start)
    count = np.ones_like(total)

    for direction in (1.0, -1.0):
        pos = start.copy()
        for _ in range(kernel_half_length):
            # RK2 on the normalised field: fixed arc-length steps.
            k1 = unit_velocity(pos)
            k2 = unit_velocity(pos + 0.5 * direction * step * k1)
            pos = pos + direction * step * k2
            inside = (
                (pos[:, 0] >= x0) & (pos[:, 0] <= x1) & (pos[:, 1] >= y0) & (pos[:, 1] <= y1)
            )
            contrib = sample_noise(np.clip(pos, [x0, y0], [x1, y1]))
            total += np.where(inside, contrib, 0.0)
            count += inside

    return (total / count).reshape(texture_size, texture_size)
