"""Spot life-cycle policies.

Figure 2 of the paper is generated "by adjusting parameters related to
spot position and spot life cycle": whether spot positions are advected
or re-randomised, how long spots live, whether they fade.  This module
reifies those knobs as a policy object applied once per animation frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.errors import AdvectionError
from repro.advection.particles import ParticleSet

PositionMode = Literal["advect", "static", "rerandomize"]
BoundaryPolicy = Literal["respawn", "wrap", "clamp"]


@dataclass(frozen=True)
class LifeCyclePolicy:
    """Per-frame particle maintenance policy.

    Parameters
    ----------
    position_mode:
        ``"advect"`` moves particles with the flow (the animated texture of
        the paper); ``"static"`` keeps positions fixed (default spot noise,
        top of figure 2); ``"rerandomize"`` redraws every position each frame
        (pure noise animation).
    boundary:
        What happens to particles leaving the domain: ``"respawn"`` re-seeds
        them uniformly, ``"wrap"`` wraps periodically, ``"clamp"`` sticks
        them to the border.
    lifetime:
        Maximum particle age in frames (``0`` = immortal).
    fade_frames:
        Frames of fade-in/out near birth/death (``0`` = no fading).
    """

    position_mode: PositionMode = "advect"
    boundary: BoundaryPolicy = "respawn"
    lifetime: int = 0
    fade_frames: int = 0

    def __post_init__(self) -> None:
        if self.position_mode not in ("advect", "static", "rerandomize"):
            raise AdvectionError(f"unknown position mode {self.position_mode!r}")
        if self.boundary not in ("respawn", "wrap", "clamp"):
            raise AdvectionError(f"unknown boundary policy {self.boundary!r}")
        if self.lifetime < 0:
            raise AdvectionError("lifetime must be >= 0")
        if self.fade_frames < 0:
            raise AdvectionError("fade_frames must be >= 0")

    @classmethod
    def default_spot_noise(cls) -> "LifeCyclePolicy":
        """Static positions — the 'default parameters' of figure 2 (top)."""
        return cls(position_mode="static", lifetime=0, fade_frames=0)

    @classmethod
    def advected(cls, lifetime: int = 50, fade_frames: int = 8) -> "LifeCyclePolicy":
        """Advected positions with finite lifetime — figure 2 (bottom)."""
        return cls(position_mode="advect", lifetime=lifetime, fade_frames=fade_frames)

    def apply_boundary(
        self,
        particles: ParticleSet,
        bounds: "tuple[float, float, float, float]",
        rng: np.random.Generator,
    ) -> int:
        """Enforce the boundary policy in place; returns #particles re-seeded."""
        x0, x1, y0, y1 = bounds
        pos = particles.positions
        outside = (pos[:, 0] < x0) | (pos[:, 0] > x1) | (pos[:, 1] < y0) | (pos[:, 1] > y1)
        if self.boundary == "respawn":
            return particles.respawn(outside, bounds, rng)
        if self.boundary == "wrap":
            pos[:, 0] = x0 + np.mod(pos[:, 0] - x0, x1 - x0)
            pos[:, 1] = y0 + np.mod(pos[:, 1] - y0, y1 - y0)
            return 0
        np.clip(pos[:, 0], x0, x1, out=pos[:, 0])
        np.clip(pos[:, 1], y0, y1, out=pos[:, 1])
        return 0

    def apply_aging(
        self,
        particles: ParticleSet,
        bounds: "tuple[float, float, float, float]",
        rng: np.random.Generator,
    ) -> int:
        """Age particles one frame and recycle the expired; returns #respawned."""
        if self.lifetime <= 0:
            return 0
        expired = particles.age_one_frame()
        return particles.respawn(expired, bounds, rng)
