"""Per-frame particle advection driver.

:class:`Advector` binds a vector field, an integrator, a step size and a
:class:`~repro.advection.lifecycle.LifeCyclePolicy`, and advances a
:class:`~repro.advection.particles.ParticleSet` one animation frame at a
time — exactly pipeline step 2 of figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import AdvectionError
from repro.advection.integrators import get_integrator, EVALS_PER_STEP
from repro.advection.lifecycle import LifeCyclePolicy
from repro.advection.particles import ParticleSet
from repro.fields.vectorfield import VectorField2D
from repro.utils.rng import as_rng


def auto_dt(field: VectorField2D) -> float:
    """The step an :class:`Advector` picks when ``dt`` is left ``None``.

    Chosen so the fastest particle moves about half a grid cell per
    frame.  Exposed so callers that need the step *before* building a
    pipeline (the sequence keys of :mod:`repro.anim` content-address on
    it) resolve exactly the value the advector would use.
    """
    return Advector._auto_dt(field)


@dataclass
class AdvectionStats:
    """Bookkeeping for one frame; feeds the machine cost model."""

    n_particles: int = 0
    n_respawned: int = 0
    field_evals: int = 0


class Advector:
    """Advances particle populations through a (replaceable) vector field.

    Parameters
    ----------
    field:
        The current vector field; replace each frame via :attr:`field` when
        the simulation produces new data (the paper reads new data 5-15
        times per second).
    dt:
        Advection time step per frame.  If ``None``, a step is chosen so the
        fastest particle moves about half a grid cell per frame — "advecting
        all particles over a small distance".
    integrator:
        ``'euler'``, ``'rk2'`` or ``'rk4'``.
    policy:
        Life-cycle policy (position mode, boundary handling, lifetimes).
    """

    def __init__(
        self,
        field: VectorField2D,
        dt: Optional[float] = None,
        integrator: str = "euler",
        policy: Optional[LifeCyclePolicy] = None,
        seed=None,
    ):
        self._field = field
        self._step = get_integrator(integrator)
        self.integrator_name = integrator
        self.policy = policy or LifeCyclePolicy()
        self.rng = as_rng(seed)
        self.dt = self._auto_dt(field) if dt is None else float(dt)
        if self.dt <= 0:
            raise AdvectionError(f"dt must be positive, got {self.dt}")

    @staticmethod
    def _auto_dt(field: VectorField2D) -> float:
        vmax = field.max_magnitude()
        spacing = field.grid.min_spacing()
        if vmax <= 0:
            return 1.0
        return 0.5 * spacing / vmax

    @property
    def field(self) -> VectorField2D:
        return self._field

    @field.setter
    def field(self, new_field: VectorField2D) -> None:
        """Swap in a new frame of data without resetting particle state."""
        self._field = new_field

    def ensure_lifetimes(self, particles: ParticleSet) -> None:
        """Install the policy's finite lifetime on an immortal particle set.

        Ages are staggered over the lifetime so recycling is spread across
        frames instead of synchronised.
        """
        if self.policy.lifetime <= 0:
            return
        immortal = particles.lifetimes == np.iinfo(np.int64).max
        if immortal.any():
            particles.lifetimes[immortal] = self.policy.lifetime
            particles.ages[immortal] = self.rng.integers(
                0, self.policy.lifetime, size=int(immortal.sum())
            )

    def advance(self, particles: ParticleSet) -> AdvectionStats:
        """Advance *particles* one frame in place and return statistics."""
        stats = AdvectionStats(n_particles=len(particles))
        self.ensure_lifetimes(particles)
        bounds = self._field.grid.bounds

        mode = self.policy.position_mode
        if mode == "advect":
            particles.positions[:] = self._step(self._field.sample, particles.positions, self.dt)
            stats.field_evals = EVALS_PER_STEP[self.integrator_name] * len(particles)
            stats.n_respawned += self.policy.apply_boundary(particles, bounds, self.rng)
        elif mode == "rerandomize":
            x0, x1, y0, y1 = bounds
            n = len(particles)
            particles.positions[:, 0] = self.rng.uniform(x0, x1, size=n)
            particles.positions[:, 1] = self.rng.uniform(y0, y1, size=n)
        # "static": positions untouched.

        stats.n_respawned += self.policy.apply_aging(particles, bounds, self.rng)
        return stats

    def run(self, particles: ParticleSet, n_frames: int) -> "list[AdvectionStats]":
        """Advance *n_frames* frames; convenience for tests and examples."""
        if n_frames < 0:
            raise AdvectionError(f"n_frames must be >= 0, got {n_frames}")
        return [self.advance(particles) for _ in range(n_frames)]
