"""Explicit ODE integrators for particle advection.

Each integrator advances a whole population of positions ``(N, 2)`` one
step of size *dt* through a velocity field; the velocity callback is any
``positions -> velocities`` function (normally ``VectorField2D.sample``),
so the integrators are independent of the grid machinery and are reused
by the streamline tracer, the particle advector and the DNS seeding
utilities.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import AdvectionError

VelocityFn = Callable[[np.ndarray], np.ndarray]


def _check(positions: np.ndarray, dt: float) -> np.ndarray:
    pos = np.asarray(positions, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise AdvectionError(f"positions must have shape (N, 2), got {pos.shape}")
    if not np.isfinite(dt):
        raise AdvectionError(f"dt must be finite, got {dt}")
    return pos


def euler_step(velocity: VelocityFn, positions: np.ndarray, dt: float) -> np.ndarray:
    """Forward Euler: one field evaluation, first-order accurate.

    The cheapest choice; adequate for the short per-frame advection steps
    spot noise animation takes (the paper advects "over a small distance").
    """
    pos = _check(positions, dt)
    return pos + dt * np.asarray(velocity(pos), dtype=np.float64)


def rk2_step(velocity: VelocityFn, positions: np.ndarray, dt: float) -> np.ndarray:
    """Midpoint rule (RK2): two evaluations, second-order accurate."""
    pos = _check(positions, dt)
    k1 = np.asarray(velocity(pos), dtype=np.float64)
    k2 = np.asarray(velocity(pos + 0.5 * dt * k1), dtype=np.float64)
    return pos + dt * k2


def rk4_step(velocity: VelocityFn, positions: np.ndarray, dt: float) -> np.ndarray:
    """Classic RK4: four evaluations, fourth-order accurate.

    Used by the bent-spot streamline tracer where geometric fidelity of the
    curve matters more than raw speed.
    """
    pos = _check(positions, dt)
    k1 = np.asarray(velocity(pos), dtype=np.float64)
    k2 = np.asarray(velocity(pos + 0.5 * dt * k1), dtype=np.float64)
    k3 = np.asarray(velocity(pos + 0.5 * dt * k2), dtype=np.float64)
    k4 = np.asarray(velocity(pos + dt * k3), dtype=np.float64)
    return pos + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


INTEGRATORS: Dict[str, Callable[[VelocityFn, np.ndarray, float], np.ndarray]] = {
    "euler": euler_step,
    "rk2": rk2_step,
    "rk4": rk4_step,
}

#: Field evaluations per step, used by the machine cost model to charge
#: processor time proportional to integrator order.
EVALS_PER_STEP: Dict[str, int] = {"euler": 1, "rk2": 2, "rk4": 4}


def get_integrator(name: str) -> Callable[[VelocityFn, np.ndarray, float], np.ndarray]:
    """Look up an integrator by name (``'euler'``, ``'rk2'``, ``'rk4'``)."""
    try:
        return INTEGRATORS[name]
    except KeyError:
        raise AdvectionError(
            f"unknown integrator {name!r}; available: {sorted(INTEGRATORS)}"
        ) from None
