"""Particle advection: pipeline step 2 of figure 3.

Every animation frame advects all spot particles a small distance through
the flow field; bent spots additionally integrate a short streamline per
spot.  Integration is vectorised over the whole particle population.
"""

from repro.advection.integrators import (
    euler_step,
    rk2_step,
    rk4_step,
    get_integrator,
    INTEGRATORS,
)
from repro.advection.particles import ParticleSet
from repro.advection.lifecycle import LifeCyclePolicy
from repro.advection.streamline import integrate_streamline, streamline_bundle
from repro.advection.unsteady import pathline_bundle, streakline, timeline, steady
from repro.advection.advector import Advector

__all__ = [
    "pathline_bundle",
    "streakline",
    "timeline",
    "steady",
    "euler_step",
    "rk2_step",
    "rk4_step",
    "get_integrator",
    "INTEGRATORS",
    "ParticleSet",
    "LifeCyclePolicy",
    "integrate_streamline",
    "streamline_bundle",
    "Advector",
]
