"""Particle populations backing the spot positions.

A :class:`ParticleSet` is a structure-of-arrays record of spot particles:
position, intensity, age and per-particle lifetime.  The divide-and-
conquer runtime partitions one of these into per-process-group subsets
(:meth:`subset`) and the animation loop ages and recycles them each frame
according to a :class:`~repro.advection.lifecycle.LifeCyclePolicy`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AdvectionError
from repro.utils.rng import as_rng


class ParticleSet:
    """Structure-of-arrays particle population.

    Attributes
    ----------
    positions:
        ``(N, 2)`` world coordinates (the spot centres ``x_i``).
    intensities:
        ``(N,)`` random scale factors ``a_i``, zero mean by construction.
    ages:
        ``(N,)`` age in frames since (re)birth.
    lifetimes:
        ``(N,)`` per-particle maximum age in frames.
    """

    __slots__ = ("positions", "intensities", "ages", "lifetimes")

    def __init__(
        self,
        positions: np.ndarray,
        intensities: np.ndarray,
        ages: Optional[np.ndarray] = None,
        lifetimes: Optional[np.ndarray] = None,
    ):
        positions = np.asarray(positions, dtype=np.float64)
        intensities = np.asarray(intensities, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise AdvectionError(f"positions must be (N, 2), got {positions.shape}")
        n = positions.shape[0]
        if intensities.shape != (n,):
            raise AdvectionError(f"intensities must be ({n},), got {intensities.shape}")
        self.positions = positions
        self.intensities = intensities
        self.ages = (
            np.zeros(n, dtype=np.int64) if ages is None else np.asarray(ages, dtype=np.int64)
        )
        self.lifetimes = (
            np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
            if lifetimes is None
            else np.asarray(lifetimes, dtype=np.int64)
        )
        if self.ages.shape != (n,) or self.lifetimes.shape != (n,):
            raise AdvectionError("ages and lifetimes must match the particle count")

    # -- construction --------------------------------------------------------
    @classmethod
    def uniform_random(
        cls,
        n: int,
        bounds: "tuple[float, float, float, float]",
        seed=None,
        intensity: float = 1.0,
        lifetime: Optional[int] = None,
        stagger_ages: bool = True,
    ) -> "ParticleSet":
        """Spawn *n* particles uniformly in *bounds* with ±intensity weights.

        Spot intensities are drawn uniformly from ``{-intensity, +intensity}``
        — a zero-mean distribution as required by the spot noise definition
        (``a_i`` has zero mean, section 2).  With a finite *lifetime*, birth
        ages are staggered so particles do not all expire on the same frame
        (which would make the whole texture flicker in sync).
        """
        if n < 0:
            raise AdvectionError(f"cannot create {n} particles")
        rng = as_rng(seed)
        x0, x1, y0, y1 = bounds
        pos = np.empty((n, 2), dtype=np.float64)
        pos[:, 0] = rng.uniform(x0, x1, size=n)
        pos[:, 1] = rng.uniform(y0, y1, size=n)
        signs = rng.choice(np.array([-1.0, 1.0]), size=n)
        inten = intensity * signs
        if lifetime is None:
            ages = None
            lifetimes = None
        else:
            if lifetime <= 0:
                raise AdvectionError(f"lifetime must be positive, got {lifetime}")
            lifetimes = np.full(n, int(lifetime), dtype=np.int64)
            ages = rng.integers(0, lifetime, size=n) if stagger_ages else np.zeros(n, dtype=np.int64)
        return cls(pos, inten, ages, lifetimes)

    # -- basic protocol --------------------------------------------------------
    def __len__(self) -> int:
        return self.positions.shape[0]

    def copy(self) -> "ParticleSet":
        return ParticleSet(
            self.positions.copy(), self.intensities.copy(), self.ages.copy(), self.lifetimes.copy()
        )

    def subset(self, indices: np.ndarray) -> "ParticleSet":
        """Extract the particles at *indices* (a copy; used by partitioning)."""
        idx = np.asarray(indices, dtype=np.int64)
        return ParticleSet(
            self.positions[idx].copy(),
            self.intensities[idx].copy(),
            self.ages[idx].copy(),
            self.lifetimes[idx].copy(),
        )

    @classmethod
    def concatenate(cls, parts: "list[ParticleSet]") -> "ParticleSet":
        """Concatenate particle sets (inverse of partitioning, order preserved)."""
        if not parts:
            raise AdvectionError("cannot concatenate zero particle sets")
        return cls(
            np.concatenate([p.positions for p in parts]),
            np.concatenate([p.intensities for p in parts]),
            np.concatenate([p.ages for p in parts]),
            np.concatenate([p.lifetimes for p in parts]),
        )

    # -- per-frame updates -----------------------------------------------------
    def age_one_frame(self) -> np.ndarray:
        """Increment ages; return boolean mask of expired particles."""
        self.ages += 1
        return self.ages >= self.lifetimes

    def respawn(self, mask: np.ndarray, bounds: "tuple[float, float, float, float]", rng) -> int:
        """Re-seed the masked particles uniformly in *bounds*; returns count.

        Intensity signs are redrawn so the recycled spots stay zero mean.
        """
        mask = np.asarray(mask, dtype=bool)
        k = int(mask.sum())
        if k == 0:
            return 0
        x0, x1, y0, y1 = bounds
        self.positions[mask, 0] = rng.uniform(x0, x1, size=k)
        self.positions[mask, 1] = rng.uniform(y0, y1, size=k)
        self.intensities[mask] = np.abs(self.intensities[mask]) * rng.choice(
            np.array([-1.0, 1.0]), size=k
        )
        self.ages[mask] = 0
        return k

    def fade_weights(self, fade_frames: int = 0) -> np.ndarray:
        """Per-particle intensity multipliers implementing fade-in/out.

        Young particles fade in over *fade_frames* frames and fade out over
        the last *fade_frames* of their lifetime, which suppresses popping
        when particles are recycled (part of the "spot life cycle" parameter
        set adjusted for figure 2).  With ``fade_frames == 0`` all weights
        are 1.
        """
        if fade_frames <= 0:
            return np.ones(len(self))
        fade_in = np.clip((self.ages + 1) / fade_frames, 0.0, 1.0)
        remaining = np.maximum(self.lifetimes - self.ages, 0)
        finite = self.lifetimes < np.iinfo(np.int64).max
        fade_out = np.where(finite, np.clip(remaining / fade_frames, 0.0, 1.0), 1.0)
        return np.minimum(fade_in, fade_out)
