"""Unsteady-flow integral curves: pathlines and streaklines.

The spot noise animation visualises *time-varying* data — "a new frame
in the animation sequence is determined by advecting all particles over
a small distance through the flow field" (section 2), with the field
itself updated 5-15 times a second.  Particle trajectories through such
data are *pathlines*, not streamlines; continuously emitted dye makes
*streaklines*.  Both are provided here, over the same vectorised
field-sampler interface the rest of the package uses — the sampler just
gains a time argument.

For a steady field all three curve families coincide (property-tested).
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.errors import AdvectionError

#: ``(positions (N,2), time) -> velocities (N,2)``
UnsteadyVelocityFn = Callable[[np.ndarray, float], np.ndarray]


def _check_inputs(seeds: np.ndarray, n_steps: int, dt: float) -> np.ndarray:
    seeds = np.asarray(seeds, dtype=np.float64)
    if seeds.ndim != 2 or seeds.shape[1] != 2:
        raise AdvectionError(f"seeds must be (N, 2), got {seeds.shape}")
    if n_steps < 1:
        raise AdvectionError(f"n_steps must be >= 1, got {n_steps}")
    if dt == 0 or not np.isfinite(dt):
        raise AdvectionError(f"dt must be finite and non-zero, got {dt}")
    return seeds


def _rk4_unsteady(
    velocity: UnsteadyVelocityFn, pos: np.ndarray, t: float, dt: float
) -> np.ndarray:
    """One RK4 step of the non-autonomous ODE ``dx/dt = v(x, t)``."""
    k1 = np.asarray(velocity(pos, t), dtype=np.float64)
    k2 = np.asarray(velocity(pos + 0.5 * dt * k1, t + 0.5 * dt), dtype=np.float64)
    k3 = np.asarray(velocity(pos + 0.5 * dt * k2, t + 0.5 * dt), dtype=np.float64)
    k4 = np.asarray(velocity(pos + dt * k3, t + dt), dtype=np.float64)
    return pos + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def pathline_bundle(
    velocity: UnsteadyVelocityFn,
    seeds: np.ndarray,
    t0: float,
    dt: float,
    n_steps: int,
) -> np.ndarray:
    """Trajectories of particles released at *seeds* at time *t0*.

    Returns ``(N, n_steps + 1, 2)``: position of each particle at times
    ``t0, t0 + dt, ..., t0 + n_steps * dt``.
    """
    seeds = _check_inputs(seeds, n_steps, dt)
    out = np.empty((seeds.shape[0], n_steps + 1, 2), dtype=np.float64)
    out[:, 0] = seeds
    pos = seeds
    t = float(t0)
    for i in range(n_steps):
        pos = _rk4_unsteady(velocity, pos, t, dt)
        t += dt
        out[:, i + 1] = pos
    return out


def streakline(
    velocity: UnsteadyVelocityFn,
    source: np.ndarray,
    t0: float,
    dt: float,
    n_steps: int,
) -> np.ndarray:
    """The streakline of a dye source observed at time ``t0 + n_steps*dt``.

    One particle is emitted from *source* at every step time; all emitted
    particles are then advected to the observation time.  Returns
    ``(n_steps + 1, 2)`` positions ordered oldest (furthest downstream)
    to newest (at the source).
    """
    src = np.asarray(source, dtype=np.float64).reshape(2)
    _check_inputs(src[None, :], n_steps, dt)
    # particles[k] was emitted at time t0 + k*dt.
    particles: List[np.ndarray] = []
    active = np.empty((0, 2), dtype=np.float64)
    t = float(t0)
    for _ in range(n_steps):
        active = np.vstack([active, src[None, :]])
        active = _rk4_unsteady(velocity, active, t, dt)
        t += dt
    # Append the particle emitted exactly at observation time.
    active = np.vstack([active, src[None, :]])
    return active


def timeline(
    velocity: UnsteadyVelocityFn,
    seeds: np.ndarray,
    t0: float,
    dt: float,
    n_steps: int,
) -> np.ndarray:
    """Advect a material line: the *timeline* of the seed curve.

    Returns the ``(N, 2)`` positions of the seed points at the final time
    — the deformed material line, the object a bent spot approximates
    locally.
    """
    curves = pathline_bundle(velocity, seeds, t0, dt, n_steps)
    return curves[:, -1]


def steady(sampler) -> UnsteadyVelocityFn:
    """Adapt a steady ``(N,2)->(N,2)`` sampler to the unsteady interface."""
    return lambda positions, t: sampler(positions)
