"""Continuous drift-driven re-planning: the :class:`PlanSupervisor`.

Before the spine, re-planning was an idle-time side effect: a render's
epilogue called ``_maybe_replan`` and a quiesced animation service
waited for someone to call ``replan_if_drifted``.  The supervisor turns
that into a loop task: services register a ``replan() -> bool`` check
(:meth:`TextureService.supervise
<repro.service.server.TextureService.supervise>`,
:meth:`AnimationService.supervise
<repro.anim.service.AnimationService.supervise>`), and the supervisor
invokes each at a fixed cadence, off-loop (the checks take service
locks and may build fresh runtimes).  Each check folds the EWMA
host-calibration drift stream (:attr:`LatencyPredictor.scale
<repro.service.admission.LatencyPredictor.scale>`) into a
:class:`~repro.parallel.planner.DecompositionPlanner` decision and
publishes any new plan as an immutable snapshot
(``_RenderBinding`` / ``_PlanContext``) — readers never lock, in-flight
work finishes on the plan it started under, and a swapped plan can only
ever cost an extra render, never a wrong-keyed cache entry.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional

from repro.errors import ServiceError
from repro.runtime.loop import RuntimeLoop, get_runtime_loop


class PlanSupervisor:
    """Periodic loop task driving registered re-plan checks.

    Parameters
    ----------
    interval_s:
        Check cadence on the spine's monotonic clock.  Each registered
        check runs at most once per interval, serialized with the
        others (re-planning is rare and cheap to check; a storm of
        concurrent re-plans is exactly what this avoids).
    runtime:
        The spine to run on; defaults to the process singleton.
    """

    def __init__(self, interval_s: float = 0.25, runtime: Optional[RuntimeLoop] = None):
        if interval_s <= 0:
            raise ServiceError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = float(interval_s)
        self._runtime = runtime or get_runtime_loop()
        self._watched: Dict[str, Callable[[], Any]] = {}  # loop-confined
        self._task: Optional[asyncio.Task] = None  # loop-confined
        self.checks = 0
        self.replans = 0
        self.errors = 0

    @property
    def runtime(self) -> RuntimeLoop:
        return self._runtime

    # -- registration ----------------------------------------------------------
    def watch(self, name: str, replan: Callable[[], Any]) -> None:
        """Register *replan* under *name* and ensure the task is running.

        *replan* is called off-loop and should return truthy when a new
        plan was adopted (both services' drift checks do).
        """
        self._runtime.call(self._watch_cb, name, replan)

    def _watch_cb(self, name: str, replan: Callable[[], Any]) -> None:
        self._watched[name] = replan
        self._ensure_task()

    def unwatch(self, name: str) -> None:
        self._runtime.call(self._watched.pop, name, None)

    def watched(self) -> "list[str]":
        return self._runtime.call(lambda: sorted(self._watched))

    # -- the supervision task --------------------------------------------------
    def start(self) -> None:
        self._runtime.call(self._ensure_task)

    def _ensure_task(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._supervise())

    async def _supervise(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            loop = asyncio.get_running_loop()
            for _name, replan in list(self._watched.items()):
                self.checks += 1
                try:
                    changed = await loop.run_in_executor(None, replan)
                except Exception:
                    # A failed check must not kill supervision of the
                    # other services; the counter keeps it observable.
                    self.errors += 1
                    continue
                if changed:
                    self.replans += 1

    def stop(self) -> None:
        """Cancel the supervision task (registrations survive a restart)."""
        self._runtime.call(self._stop_cb)

    def _stop_cb(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def close(self) -> None:
        self.stop()

    def __enter__(self) -> "PlanSupervisor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
