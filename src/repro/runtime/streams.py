"""Streaming primitives on the async spine.

Two pieces replace the anim tier's hand-rolled condition-variable
machinery:

* :class:`FrameStream` — the loop-confined core of one in-flight frame
  walk: claim (:meth:`next_frame`), :meth:`publish`, join/curtail, and
  an awaitable :meth:`wait_frame`.  Exactly the semantics of the old
  ``SequenceFlight`` — monotonically extendable target, bounded
  evict-oldest buffer (evicted/passed frames fall back to the service
  cache), curtail-and-union replacement — but the state is touched only
  from the event loop, so the condition variable and its lock are gone.
  :class:`~repro.anim.scheduler.SequenceFlight` is now a thin blocking
  facade over this core.

* :class:`BoundedFrameChannel` — a backpressured single-producer
  async pipe: ``put`` awaits while the buffer is full, so a range
  stream's producer stays at most ``maxsize`` frames ahead of its
  consumer instead of rendering the whole range into memory.  This is
  the per-consumer delivery half of
  :meth:`~repro.anim.service.AnimationService.stream_async`; the shared
  walk buffer above keeps its evict-plus-cache-fallback semantics
  because *other* joiners must not be throttled by one slow consumer.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from typing import Any, List, Optional

from repro.errors import ServiceError


def _wake(waiters: "List[asyncio.Future]") -> None:
    """Resolve every registered waiter future (broadcast notify)."""
    for fut in waiters:
        if not fut.done():
            fut.set_result(None)
    waiters.clear()


async def _wait_on(waiters: "List[asyncio.Future]") -> None:
    """Park until the next :func:`_wake` on *waiters*.

    Per-waiter futures make cancellation local: a timed-out waiter
    cancels only its own future, never a broadcast future other waiters
    are parked on.
    """
    fut = asyncio.get_running_loop().create_future()
    waiters.append(fut)
    try:
        await fut
    finally:
        if not fut.done():
            fut.cancel()
        if fut in waiters:
            waiters.remove(fut)


class FrameStream:
    """Loop-confined core of one in-flight streaming render walk.

    The walk renders frames ``first..target-1`` in order; ``target`` is
    monotonically extendable while it runs.  Published frames are
    buffered for waiters, bounded to the most recent *buffer_limit*
    entries — anything the walk has passed is in the service's
    content-addressed cache already, so :meth:`wait_frame` reports
    evicted/passed frames as ``None`` and the caller falls back there.

    Every method must run on the owning event loop; the blocking
    facade (:class:`~repro.anim.scheduler.SequenceFlight`) shims through
    :meth:`RuntimeLoop.call <repro.runtime.loop.RuntimeLoop.call>`.
    """

    def __init__(self, sequence_id: str, first: int, target: int, buffer_limit: int):
        self.sequence_id = sequence_id
        self.first = int(first)
        self.target = int(target)  # loop-confined
        self.position = int(first)  # loop-confined (next frame the walk renders)
        self.buffer_limit = int(buffer_limit)
        self.frames: "OrderedDict[int, Any]" = OrderedDict()  # loop-confined
        self.done = False  # loop-confined
        self.error: Optional[BaseException] = None  # loop-confined
        self.joiners = 0  # loop-confined
        self._waiters: "List[asyncio.Future]" = []

    # -- the worker side -------------------------------------------------------
    def next_frame(self) -> Optional[int]:
        """The walk's claim step: the next frame to render, or ``None``.

        Returning ``None`` marks the stream done in the same loop
        callback, so a concurrent join either lands before (and the walk
        continues) or observes ``done`` and starts a new flight — the
        store-conditional that makes join-vs-finish race-free.
        """
        if self.position >= self.target:
            self.done = True
            _wake(self._waiters)
            return None
        return self.position

    def publish(self, frame: int, payload: Any) -> None:
        """Deliver a rendered frame and advance the walk position.

        Publishing the final claimed frame marks the stream done in the
        same loop callback.  Without this, a request arriving right
        after delivery could observe a fully-served walk that has not
        yet re-claimed (the claim round-trips worker thread -> loop) and
        join it — extending a finished walk re-renders the whole gap to
        the new target, where a fresh flight would advect past cached
        state and render only the requested frame.
        """
        self.frames[frame] = payload
        while len(self.frames) > self.buffer_limit:
            self.frames.popitem(last=False)
        self.position = frame + 1
        if self.position >= self.target:
            self.done = True
        _wake(self._waiters)

    def finish(self, error: Optional[BaseException] = None) -> None:
        self.done = True
        if error is not None:
            self.error = error
        _wake(self._waiters)

    def curtail(self) -> int:
        """Stop the walk; returns the end of its *unserved* remainder.

        The registry's half of replacing a flight that can no longer
        serve a request: the old walk stops claiming frames — its
        :meth:`next_frame` sees ``position >= target`` and finishes —
        and the replacement takes over the remainder ``[position,
        old target)`` of its range, so no frame is claimed by two walks
        and no joiner's frame is dropped.  Frames already published stay
        in the buffer for existing waiters.

        A stream that is done (or already curtailed) has no remainder,
        and reports ``0`` so the union never extends: folding a
        *finished* walk's historical target into its replacement would
        make every successor walk the whole old range again.
        """
        if self.done or self.position >= self.target:
            return 0
        old_target, self.target = self.target, self.position
        _wake(self._waiters)
        return old_target

    # -- the client side -------------------------------------------------------
    def try_join(self, start: int, stop: int) -> bool:
        """Join for ``[start, stop)`` iff the stream can still serve it.

        Joinable iff *start* is in the buffer or still ahead of the
        walk; a frame the walk passed and evicted is refused so the
        registry starts a fresh flight instead of waiting on one that
        will never look back.  Extends the target to *stop* on join.
        """
        if self.done or self.error is not None:
            return False
        if start < self.position and start not in self.frames:
            return False
        self.target = max(self.target, int(stop))
        self.joiners += 1
        return True

    async def wait_frame(self, frame: int) -> Any:
        """Await *frame*'s payload.

        Returns ``None`` when this stream can no longer deliver it from
        its buffer (the walk passed it, or finished without reaching
        it); raises the stream's error if the walk failed.  Timeouts are
        the caller's job (``asyncio.wait_for``).
        """
        while True:
            if frame in self.frames:
                return self.frames[frame]
            if self.error is not None:
                raise self.error
            if self.done or self.position > frame:
                return None
            await _wait_on(self._waiters)


class ChannelClosed(ServiceError):
    """``put`` on a closed channel, or ``get`` past the final item."""


class BoundedFrameChannel:
    """Backpressured async pipe between one producer and one consumer.

    ``put`` awaits while the buffer holds *maxsize* items, so the
    producer runs at most *maxsize* ahead of consumption.  ``close``
    (optionally with an error) lets the consumer drain what was already
    buffered; the error surfaces after the last buffered item, matching
    the blocking iterator's "frames before the failure still stream"
    behaviour.  Runs on whichever loop the producer and consumer share —
    for :meth:`~repro.anim.service.AnimationService.stream_async`, the
    caller's own loop, not the runtime spine.
    """

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ServiceError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._items: "deque[Any]" = deque()
        self._closed = False
        self._error: Optional[BaseException] = None
        self._readable: "List[asyncio.Future]" = []
        self._writable: "List[asyncio.Future]" = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    async def put(self, item: Any) -> None:
        while len(self._items) >= self.maxsize and not self._closed:
            await _wait_on(self._writable)
        if self._closed:
            raise ChannelClosed("channel is closed")
        self._items.append(item)
        _wake(self._readable)

    async def get(self) -> Any:
        while not self._items:
            if self._closed:
                if self._error is not None:
                    raise self._error
                raise ChannelClosed("channel drained")
            await _wait_on(self._readable)
        item = self._items.popleft()
        _wake(self._writable)
        return item

    def close(self, error: Optional[BaseException] = None) -> None:
        if self._closed:
            return
        self._closed = True
        if error is not None:
            self._error = error
        _wake(self._readable)
        _wake(self._writable)

    def __aiter__(self) -> "BoundedFrameChannel":
        return self

    async def __anext__(self) -> Any:
        try:
            return await self.get()
        except ChannelClosed:
            raise StopAsyncIteration from None
