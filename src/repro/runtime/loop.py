"""The process-wide event loop and its cross-thread shims.

:class:`RuntimeLoop` owns one asyncio loop on a dedicated daemon
thread.  Everything above it — schedulers, streams, cluster sockets,
the plan supervisor — schedules work onto that loop and keeps its
coordination state *loop-confined*: touched only from loop callbacks,
so it needs no locks.  Thread-world callers (the blocking public APIs)
cross over with :meth:`run` (await a coroutine) or :meth:`call` (run a
plain function on the loop thread); both are
``run_coroutine_threadsafe`` shims and both refuse to run *on* the loop
thread, where blocking on the loop's own result would deadlock.

:func:`get_runtime_loop` hands out the process-wide singleton.  The
process backends fork workers, and a forked child inherits a loop whose
thread does not exist there — an ``at_fork`` hook drops the handle so
the child lazily builds its own spine.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import threading
from typing import Any, Callable, Coroutine, Optional, TypeVar

from repro.errors import ServiceError

T = TypeVar("T")


class RuntimeLoop:
    """One asyncio event loop on a dedicated daemon thread.

    Parameters
    ----------
    name:
        Thread name (observability; the default is the process spine).
    """

    def __init__(self, name: str = "repro-runtime"):
        self.name = name
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._main, name=name, daemon=True)
        self._thread.start()
        self._started.wait()

    def _main(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
            # Shutdown: cancel whatever is still pending and give it one
            # final spin to unwind before the loop closes.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            self._loop.close()

    # -- introspection ---------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._thread.is_alive() and not self._loop.is_closed()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    def in_loop_thread(self) -> bool:
        return threading.current_thread() is self._thread

    def time(self) -> float:
        """The spine's monotonic clock (valid from any thread).

        Admission windows, backoff deadlines and supervisor cadence all
        read this one clock, so cross-component timing is comparable.
        """
        return self._loop.time()

    # -- crossing into the loop ------------------------------------------------
    def submit(self, coro: "Coroutine[Any, Any, T]") -> "concurrent.futures.Future[T]":
        """Schedule *coro* on the loop; returns a concurrent future."""
        if not self.alive:
            coro.close()
            raise ServiceError("runtime loop is shut down")
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def run(self, coro: "Coroutine[Any, Any, T]", timeout: Optional[float] = None) -> T:
        """Run *coro* on the loop and block for its result.

        The deadlock guard is load-bearing: a blocking shim invoked from
        the loop thread would wait on a result only the loop thread can
        produce.  Code running on the loop must ``await`` instead.
        """
        if self.in_loop_thread():
            coro.close()
            raise ServiceError(
                "blocking runtime call from the event-loop thread would "
                "deadlock; await the coroutine instead"
            )
        future = self.submit(coro)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ServiceError(f"runtime call timed out after {timeout}s") from None

    def call(self, fn: Callable[..., T], *args: Any) -> T:
        """Run plain ``fn(*args)`` on the loop thread; returns its result.

        This is how thread-world code touches loop-confined state: the
        function executes as one loop callback, atomically with respect
        to every other loop callback.
        """

        async def invoke() -> T:
            return fn(*args)

        return self.run(invoke())

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget ``fn(*args)`` as a loop callback."""
        self._loop.call_soon_threadsafe(fn, *args)

    # -- lifecycle -------------------------------------------------------------
    def shutdown(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the loop and join its thread (private loops/tests; the
        process singleton lives for the process)."""
        if not self.alive:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "RuntimeLoop":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


_runtime_lock = threading.Lock()
_runtime: Optional[RuntimeLoop] = None


def get_runtime_loop() -> RuntimeLoop:
    """The process-wide :class:`RuntimeLoop`, created on first use."""
    global _runtime
    with _runtime_lock:
        if _runtime is None or not _runtime.alive:
            _runtime = RuntimeLoop()
        return _runtime


def _reset_after_fork() -> None:
    # A forked child inherits the parent's loop object but not its
    # thread; both the handle and the guard lock (which another parent
    # thread may have held at fork time) must be remade from scratch.
    global _runtime, _runtime_lock
    _runtime = None
    _runtime_lock = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)
