"""The bounded render-executor bridge.

Renders are CPU-bound divide-and-conquer jobs that must never run on
the event loop; :class:`RenderExecutor` bridges them onto a capped
thread pool via ``loop.run_in_executor`` and keeps the one piece of
accounting the admission path needs: :attr:`active`, the number of
renders whose body has actually *started*.  Admission prices a new
request by the backlog — flights in the system minus flights already
executing — so the counter increments in the pool thread immediately
before the render body runs, never at submission (a queued render is
still backlog).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.errors import ServiceError


class RenderExecutor:
    """Capped thread pool bridged into the event loop.

    Parameters
    ----------
    n_workers:
        Pool size — distinct-render concurrency.  Each worker drives a
        full divide-and-conquer render (which itself fans out over
        :mod:`repro.parallel.backends`), so the cap trades request
        concurrency against per-render parallelism, exactly as the old
        scheduler worker threads did.
    """

    def __init__(self, n_workers: int, name: str = "render"):
        if n_workers < 1:
            raise ServiceError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix=f"{name}-worker"
        )
        self._lock = threading.Lock()
        self._active = 0  #: guarded-by: _lock

    @property
    def active(self) -> int:
        """Renders executing right now (body entered, not yet returned)."""
        with self._lock:
            return self._active

    def _tracked(self, fn: Callable[[], Any]) -> Callable[[], Any]:
        def call() -> Any:
            # Increment in the pool thread, before the body: a render is
            # "executing" the moment a worker picks it up, which is what
            # excludes it from the backlog a new request queues behind.
            with self._lock:
                self._active += 1
            try:
                return fn()
            finally:
                with self._lock:
                    self._active -= 1

        return call

    async def run(self, fn: Callable[[], Any]) -> Any:
        """Run blocking *fn* on the pool; resolves on the calling loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, self._tracked(fn))

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "RenderExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
