"""The async-first runtime spine.

One long-lived asyncio event loop per process coordinates everything
that used to be a thread-pool-plus-lock stack of its own: single-flight
request coalescing (:mod:`repro.runtime.singleflight`), the bounded
render-executor bridge (:mod:`repro.runtime.executor`), streaming frame
delivery with backpressure (:mod:`repro.runtime.streams`), and
continuous drift-driven re-planning (:mod:`repro.runtime.supervisor`).

The design rule throughout is *loop confinement instead of locks*:
coordination state (in-flight maps, walk buffers, channel queues) is
only ever touched from the event-loop thread, so it needs no locking at
all, and cross-thread callers go through thin
``run_coroutine_threadsafe`` shims (:meth:`RuntimeLoop.run` /
:meth:`RuntimeLoop.call`).  Mutable *published* state follows the
immutable-snapshot-swap discipline already proven by
:class:`~repro.cluster.ring.HashRing` and
:class:`~repro.service.server._RenderBinding`: writers publish a whole
new snapshot atomically, readers never lock.

The blocking public APIs of the serving stack
(:class:`~repro.service.server.TextureService`,
:class:`~repro.anim.service.AnimationService`,
:class:`~repro.cluster.node.ClusterNode`) are unchanged — they are now
shims over this spine.
"""

from repro.runtime.executor import RenderExecutor
from repro.runtime.loop import RuntimeLoop, get_runtime_loop
from repro.runtime.singleflight import AsyncSingleFlight, Flight
from repro.runtime.streams import BoundedFrameChannel, ChannelClosed, FrameStream
from repro.runtime.supervisor import PlanSupervisor

__all__ = [
    "AsyncSingleFlight",
    "BoundedFrameChannel",
    "ChannelClosed",
    "Flight",
    "FrameStream",
    "PlanSupervisor",
    "RenderExecutor",
    "RuntimeLoop",
    "get_runtime_loop",
]
