"""Async single-flight: key → in-flight awaitable, coalescing via futures.

The thread-pool scheduler coalesced duplicates through
:class:`~repro.service.scheduler.RenderTicket` events under a lock; on
the spine the same contract is a loop-confined dict of
:class:`Flight`\\s, each carrying one shared :class:`asyncio.Future`.
Everything here runs on the owning event loop — confinement *is* the
synchronization, so there is no lock to take and no ordering to get
wrong beyond the one that matters: :meth:`AsyncSingleFlight.settle`
retires a flight from the map *before* resolving its future, so a
request arriving after completion starts fresh (and usually hits the
cache the flight just populated).

Waiter accounting mirrors the blocking ticket's contract: joining
increments :attr:`Flight.waiters`, and a waiter that gives up — timeout
or cancellation — detaches, so shed/cancellation accounting sees the
true number of live waiters (see
:meth:`~repro.service.scheduler.RenderTicket.wait`'s detach-on-timeout
fix, mirrored here in :meth:`AsyncSingleFlight.wait`).
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Optional

from repro.errors import ServiceError


class Flight:
    """One in-flight computation; many waiters share its future."""

    __slots__ = ("key", "future", "waiters")

    def __init__(self, key: str, future: "asyncio.Future[Any]"):
        self.key = key
        self.future = future
        self.waiters = 1  # loop-confined (the creator is the first waiter)


class AsyncSingleFlight:
    """Loop-confined map of in-flight computations.

    All methods must run on the owning event loop (as loop callbacks or
    inside coroutines scheduled there).
    """

    def __init__(self) -> None:
        self._flights: Dict[str, Flight] = {}  # loop-confined
        self.coalesced = 0
        self.dispatched = 0

    def __len__(self) -> int:
        return len(self._flights)

    def get(self, key: str) -> Optional[Flight]:
        return self._flights.get(key)

    def begin(self, key: str) -> Flight:
        """Register a new flight for *key* (which must not be in flight)."""
        if key in self._flights:
            raise ServiceError(f"key {key[:12]}... is already in flight")
        flight = Flight(key, asyncio.get_running_loop().create_future())
        self._flights[key] = flight
        self.dispatched += 1
        return flight

    def join(self, flight: Flight) -> None:
        """Attach one more waiter to an existing flight (a coalesced hit)."""
        flight.waiters += 1
        self.coalesced += 1

    def detach(self, flight: Flight) -> None:
        """Drop one waiter that gave up (timeout / cancellation).

        Without this the count only ever grows, and anything pricing
        work by live waiters — late-cancellation, shed accounting —
        over-counts forever.
        """
        if flight.waiters > 0:
            flight.waiters -= 1

    def settle(
        self,
        flight: Flight,
        result: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Resolve the flight, retiring it from the map *first*."""
        self._flights.pop(flight.key, None)
        if flight.future.done():
            return
        if error is not None:
            flight.future.set_exception(error)
            # Blocking waiters consume the error through their ticket,
            # not this future; mark it retrieved so an all-threads
            # request never logs a phantom "exception never retrieved".
            flight.future.exception()
        else:
            flight.future.set_result(result)

    async def wait(self, flight: Flight, timeout: Optional[float] = None) -> Any:
        """Await the flight's result; detaches on timeout/cancellation.

        The shield keeps the shared future alive when *this* waiter is
        cancelled — other waiters are still attached to it.
        """
        try:
            return await asyncio.wait_for(asyncio.shield(flight.future), timeout)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self.detach(flight)
            raise

    async def run(
        self,
        key: str,
        supplier: Callable[[], Awaitable[Any]],
        timeout: Optional[float] = None,
    ) -> Any:
        """Coalesce around *supplier*: one run per key, shared by all
        concurrent callers; later callers await the first's future."""
        existing = self.get(key)
        if existing is not None:
            self.join(existing)
            return await self.wait(existing, timeout)
        flight = self.begin(key)
        try:
            result = await supplier()
        except BaseException as exc:  # noqa: BLE001 - delivered to waiters
            self.settle(flight, error=exc)
            raise
        self.settle(flight, result)
        return result
