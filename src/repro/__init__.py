"""repro — Divide and Conquer Spot Noise.

A from-scratch Python reproduction of *Divide and Conquer Spot Noise*
(W.C. de Leeuw and R. van Liere, CWI SEN-R9715, presented at
SuperComputing'97): interactive spot noise texture synthesis for flow
visualisation, parallelised over process groups and graphics pipes.

Quick start::

    from repro import SpotNoiseConfig, SpotNoiseSynthesizer
    from repro.fields import vortex_field

    synth = SpotNoiseSynthesizer(SpotNoiseConfig(n_spots=2000, texture_size=256))
    frame = synth.synthesize(vortex_field())
    # frame.display is a (256, 256) array in [0, 1]

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.fields` — grids, vector/scalar fields, analytic flows
- :mod:`repro.advection` — particle advection, streamlines, life cycles
- :mod:`repro.spots` — spot profiles, flow transforms, bent spots
- :mod:`repro.raster` — software scan conversion and blending
- :mod:`repro.glsim` — simulated OpenGL state machine / graphics pipes
- :mod:`repro.machine` — calibrated Onyx2 performance model (Tables 1-2)
- :mod:`repro.parallel` — divide-and-conquer runtime and backends
- :mod:`repro.core` — the four-stage pipeline and public API
- :mod:`repro.service` — cache-backed, request-coalescing texture serving
- :mod:`repro.anim` — temporally-coherent animation streaming
- :mod:`repro.apps` — smog steering and DNS browsing applications
- :mod:`repro.baselines` — arrow plots, streamlines, LIC, sequential
- :mod:`repro.viz` — colormaps, overlays, image IO, texture statistics
"""

from repro.core.config import SpotNoiseConfig, BentConfig
from repro.core.pipeline import SpotNoisePipeline, FrameResult
from repro.core.synthesizer import SpotNoiseSynthesizer, render_frame
from repro.core.animation import AnimationLoop
from repro.core.steering import SteeringSession
from repro.errors import ReproError
from repro.service.server import TextureService
from repro.anim.service import AnimationService

__version__ = "1.1.0"

__all__ = [
    "SpotNoiseConfig",
    "BentConfig",
    "SpotNoisePipeline",
    "FrameResult",
    "SpotNoiseSynthesizer",
    "render_frame",
    "AnimationLoop",
    "SteeringSession",
    "TextureService",
    "AnimationService",
    "ReproError",
    "__version__",
]
