"""Computational steering support.

The motivation for interactive spot noise is steering: "users can control
various aspects of the application" while watching the visualisation [2,
6].  A :class:`SteeringSession` exposes named, range-checked parameters
that the user (or a script) may change *between frames*; the owning
application reads them each simulation step.  Changes are journalled so
experiments are replayable — the steering analogue of a lab notebook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import SteeringError


@dataclass
class Parameter:
    """A steerable scalar parameter."""

    name: str
    value: float
    lo: float
    hi: float
    description: str = ""

    def __post_init__(self) -> None:
        if not (self.lo <= self.hi):
            raise SteeringError(f"parameter {self.name!r}: lo {self.lo} > hi {self.hi}")
        if not (self.lo <= self.value <= self.hi):
            raise SteeringError(
                f"parameter {self.name!r}: initial value {self.value} outside [{self.lo}, {self.hi}]"
            )

    def set(self, value: float) -> None:
        if not (self.lo <= value <= self.hi):
            raise SteeringError(
                f"parameter {self.name!r}: {value} outside [{self.lo}, {self.hi}]"
            )
        self.value = float(value)


class SteeringSession:
    """A registry of steerable parameters plus a change journal."""

    def __init__(self) -> None:
        self._params: Dict[str, Parameter] = {}
        self._journal: List[Tuple[int, str, float]] = []
        self._frame = 0
        self._listeners: List[Callable[[str, float], None]] = []

    def register(
        self, name: str, value: float, lo: float, hi: float, description: str = ""
    ) -> Parameter:
        if name in self._params:
            raise SteeringError(f"parameter {name!r} already registered")
        p = Parameter(name, float(value), float(lo), float(hi), description)
        self._params[name] = p
        return p

    def names(self) -> List[str]:
        return sorted(self._params)

    def get(self, name: str) -> float:
        try:
            return self._params[name].value
        except KeyError:
            raise SteeringError(f"unknown parameter {name!r}; have {self.names()}") from None

    def set(self, name: str, value: float) -> None:
        """Steer: validated, journalled, listeners notified."""
        if name not in self._params:
            raise SteeringError(f"unknown parameter {name!r}; have {self.names()}")
        self._params[name].set(value)
        self._journal.append((self._frame, name, float(value)))
        for listener in self._listeners:
            listener(name, float(value))

    def on_change(self, listener: Callable[[str, float], None]) -> None:
        self._listeners.append(listener)

    def tick(self) -> None:
        """Advance the frame counter (call once per simulation step)."""
        self._frame += 1

    @property
    def journal(self) -> List[Tuple[int, str, float]]:
        """(frame, parameter, value) change records, in order."""
        return list(self._journal)

    def replay_into(self, other: "SteeringSession") -> None:
        """Apply this journal to another session (reproducing a run)."""
        for _, name, value in self._journal:
            other.set(name, value)

    def describe(self) -> str:
        lines = []
        for name in self.names():
            p = self._params[name]
            lines.append(f"{name} = {p.value:g}  in [{p.lo:g}, {p.hi:g}]  {p.description}")
        return "\n".join(lines)
