"""High-level one-call API.

:class:`SpotNoiseSynthesizer` wraps the pipeline for the common cases: a
single texture from a field, an animated sequence, and performance
prediction on arbitrary workstation shapes through the machine model —
the programmatic equivalents of what the paper's figures and tables show.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.core.config import SpotNoiseConfig
from repro.core.pipeline import FrameResult, SpotNoisePipeline
from repro.advection.lifecycle import LifeCyclePolicy
from repro.errors import PipelineError
from repro.fields.vectorfield import VectorField2D
from repro.machine.costs import CostModel
from repro.machine.schedule import TimingResult, simulate_texture
from repro.machine.workload import (  # noqa: F401 - re-exported public API
    DEFAULT_WORKLOAD_GRID_SHAPE,
    SpotWorkload,
    workload_from_config,
)
from repro.machine.workstation import WorkstationConfig
from repro.parallel.planner import DecompositionPlan, DecompositionPlanner
from repro.parallel.runtime import DivideAndConquerRuntime


def render_frame(
    config: SpotNoiseConfig,
    field: VectorField2D,
    policy: Optional[LifeCyclePolicy] = None,
    runtime: Optional[DivideAndConquerRuntime] = None,
) -> FrameResult:
    """Render one texture as a pure function of ``(config, field)``.

    A fresh pipeline is built (so the particle population is re-seeded
    from ``config.seed``), stepped exactly once and torn down; repeated
    calls with equal arguments therefore produce bit-identical frames —
    the determinism contract the serving cache (:mod:`repro.service`)
    depends on.  Pass a *runtime* built for the same *config* to reuse
    its pooled execution backend across calls; an injected runtime is
    left open.
    """
    pipe = SpotNoisePipeline(config, field, policy=policy, runtime=runtime)
    try:
        return pipe.step()
    finally:
        pipe.close()


class SpotNoiseSynthesizer:
    """Facade over the pipeline.

    >>> from repro.fields import vortex_field
    >>> synth = SpotNoiseSynthesizer(SpotNoiseConfig(n_spots=500, texture_size=128))
    >>> frame = synth.synthesize(vortex_field(n=32))
    >>> frame.display.shape
    (128, 128)
    """

    def __init__(self, config: Optional[SpotNoiseConfig] = None):
        self.config = config or SpotNoiseConfig()
        self._pipeline: Optional[SpotNoisePipeline] = None

    def close(self) -> None:
        if self._pipeline is not None:
            self._pipeline.close()
            self._pipeline = None

    def __enter__(self) -> "SpotNoiseSynthesizer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pipeline(
        self, field: VectorField2D, policy: Optional[LifeCyclePolicy]
    ) -> SpotNoisePipeline:
        """Reuse the cached pipeline only when it actually fits the request.

        A pipeline is bound to its field *geometry* (domain bounds and
        grid shape — a same-bounds field at a different resolution needs
        re-seeding and re-scaled spots) and to its life-cycle policy.  A
        ``policy`` of ``None`` means "no preference" and reuses whatever
        the pipeline was built with.
        """
        pipe = self._pipeline
        if pipe is not None:
            same_geometry = (
                pipe.field.grid.bounds == field.grid.bounds
                and tuple(pipe.field.grid.shape) == tuple(field.grid.shape)
            )
            same_policy = policy is None or policy == pipe.policy
            if same_geometry and same_policy:
                return pipe
            if policy is None:
                # Geometry forced the rebuild; with no new preference the
                # old pipeline's policy carries over.
                policy = pipe.policy
            pipe.close()
            self._pipeline = None
        self._pipeline = SpotNoisePipeline(self.config, field, policy=policy)
        return self._pipeline

    # -- main entry points -------------------------------------------------------
    def synthesize(
        self, field: VectorField2D, policy: Optional[LifeCyclePolicy] = None
    ) -> FrameResult:
        """Generate one frame (advect once, then synthesise and render)."""
        pipe = self._ensure_pipeline(field, policy)
        pipe.read_data(field)
        return pipe.step()

    def animate(
        self,
        fields: "VectorField2D | Iterable[VectorField2D]",
        n_frames: int,
        policy: Optional[LifeCyclePolicy] = None,
    ) -> Iterator[FrameResult]:
        """Yield *n_frames* frames; *fields* may be static or a per-frame iterable."""
        if n_frames < 0:
            raise ValueError(f"n_frames must be >= 0, got {n_frames}")
        if isinstance(fields, VectorField2D):
            field_iter: Iterator[VectorField2D] = iter([fields] * n_frames)
        else:
            field_iter = iter(fields)
        pipe: Optional[SpotNoisePipeline] = None
        for frame in range(n_frames):
            try:
                field = next(field_iter)
            except StopIteration:
                return
            if pipe is None:
                pipe = self._ensure_pipeline(field, policy)
            try:
                pipe.read_data(field)
            except PipelineError as exc:
                # read_data validates the grid geometry; rebuilding here
                # would silently reset the particle population, so surface
                # the change with the animation context attached instead.
                raise PipelineError(
                    f"field geometry changed mid-animation at frame {frame}: {exc}; "
                    "animate over same-geometry fields or start a new animation"
                ) from None
            yield pipe.step()

    # -- decomposition planning ----------------------------------------------------
    def plan(
        self,
        field: VectorField2D,
        planner: Optional[DecompositionPlanner] = None,
        scale: float = 1.0,
    ) -> DecompositionPlan:
        """Price the candidate decompositions for this config on *field*.

        Returns the cheapest (backend, n_groups, partition) triple with
        the full priced candidate table attached.  ``scale`` is a host
        calibration factor for the render-work terms (the serving layer
        learns one online via
        :class:`~repro.service.admission.LatencyPredictor`); 1.0 prices
        raw Onyx2-structured costs, which still ranks candidates
        correctly on any host.
        """
        planner = planner or DecompositionPlanner()
        workload = workload_from_config(self.config, field)
        return planner.plan(workload, scale=scale)

    # -- performance prediction ----------------------------------------------------
    def predict_timing(
        self,
        field: VectorField2D,
        n_processors: int,
        n_pipes: int,
        costs: Optional[CostModel] = None,
        **kwargs,
    ) -> TimingResult:
        """Predict textures/second on a given workstation shape.

        This is the bridge between the real implementation and the
        machine model: the workload is derived from this synthesizer's
        configuration and played through the discrete-event simulator.
        """
        workload = workload_from_config(self.config, field)
        return simulate_texture(
            WorkstationConfig(n_processors, n_pipes), workload, costs=costs, **kwargs
        )

    def sweep_timing(
        self,
        field: VectorField2D,
        processor_counts: "tuple[int, ...]" = (1, 2, 4, 8),
        pipe_counts: "tuple[int, ...]" = (1, 2, 4),
        costs: Optional[CostModel] = None,
    ) -> "dict[tuple[int, int], TimingResult]":
        """Reproduce a full table for this configuration's workload."""
        workload = workload_from_config(self.config, field)
        out: "dict[tuple[int, int], TimingResult]" = {}
        for np_ in processor_counts:
            for ng in pipe_counts:
                if ng > np_:
                    continue
                out[(np_, ng)] = simulate_texture(
                    WorkstationConfig(np_, ng), workload, costs=costs
                )
        return out
