"""The spot noise pipeline and public API.

:class:`~repro.core.synthesizer.SpotNoiseSynthesizer` is the main entry
point of the library: configure it with a :class:`~repro.core.config.SpotNoiseConfig`,
hand it vector fields, receive textures.  :class:`~repro.core.pipeline.SpotNoisePipeline`
exposes the four explicit stages of figure 3 for applications that steer
the loop themselves, and :class:`~repro.core.animation.AnimationLoop`
drives frame sequences.
"""

from repro.core.config import SpotNoiseConfig, BentConfig
from repro.core.pipeline import SpotNoisePipeline, FrameResult
from repro.core.synthesizer import SpotNoiseSynthesizer
from repro.core.animation import AnimationLoop
from repro.core.steering import SteeringSession, Parameter

__all__ = [
    "SpotNoiseConfig",
    "BentConfig",
    "SpotNoisePipeline",
    "FrameResult",
    "SpotNoiseSynthesizer",
    "AnimationLoop",
    "SteeringSession",
    "Parameter",
]
