"""The four-stage spot noise pipeline of figure 3.

Stage 1 *read data*: accept a new vector field (5-15 times/s in steered
use).  Stage 2 *advect particles*: move the spot particles through the
flow.  Stage 3 *generate texture*: divide-and-conquer synthesis.  Stage 4
*render scene*: normalise, drape scalars, compose the displayable image.

The pipeline owns persistent state (the particle population, the runtime
with its worker pool) so successive frames are cheap; each stage is also
callable on its own, which is how the steering applications interleave
simulation and visualisation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.advection.advector import Advector
from repro.advection.lifecycle import LifeCyclePolicy
from repro.advection.particles import ParticleSet
from repro.core.config import SpotNoiseConfig
from repro.errors import PipelineError
from repro.fields.scalarfield import ScalarField2D
from repro.fields.vectorfield import VectorField2D
from repro.parallel.runtime import DivideAndConquerRuntime, RuntimeReport
from repro.spots.distribution import seed_positions, signed_intensities
from repro.spots.filtering import contrast_stretch, highpass_texture, histogram_equalize
from repro.utils.rng import as_rng
from repro.utils.timing import StageTimer
from repro.viz.colormap import Colormap, rainbow
from repro.viz.overlay import compose_scene


@dataclass
class FrameResult:
    """One synthesised frame."""

    texture: np.ndarray          # raw signed intensity sum
    display: np.ndarray          # contrast-stretched [0, 1] grayscale
    image: Optional[np.ndarray]  # (H, W, 3) RGB when stage 4 ran with overlays
    report: RuntimeReport
    frame_index: int


class SpotNoisePipeline:
    """Stateful four-stage pipeline bound to one configuration.

    Parameters
    ----------
    config:
        Synthesis configuration.
    field:
        Initial vector field (stage 1 input); replace per frame with
        :meth:`read_data`.
    policy:
        Particle life-cycle policy; default advects with respawn at the
        domain boundary.
    runtime:
        Optional pre-built :class:`DivideAndConquerRuntime` to render
        with.  The pipeline does *not* take ownership: :meth:`close`
        leaves an injected runtime (and its pooled backend) alive, which
        is how the serving layer amortises worker pools across many
        short-lived pipelines.
    """

    def __init__(
        self,
        config: SpotNoiseConfig,
        field: VectorField2D,
        policy: Optional[LifeCyclePolicy] = None,
        dt: Optional[float] = None,
        runtime: Optional[DivideAndConquerRuntime] = None,
    ):
        self.config = config
        self.field = field
        self.policy = policy or LifeCyclePolicy()
        self.rng = as_rng(config.seed)
        if config.seeding == "uniform":
            self.particles = ParticleSet.uniform_random(
                config.n_spots, field.grid.bounds, seed=self.rng, intensity=config.intensity
            )
        else:
            positions = seed_positions(config.n_spots, field.grid, config.seeding, self.rng)
            intensities = signed_intensities(config.n_spots, config.intensity, self.rng)
            self.particles = ParticleSet(positions, intensities)
        self.advector = Advector(field, dt=dt, policy=self.policy, seed=self.rng)
        self.runtime = runtime or DivideAndConquerRuntime(config)
        self._owns_runtime = runtime is None
        self.timer = StageTimer()
        self.frame_index = 0

    def close(self) -> None:
        if self._owns_runtime:
            self.runtime.close()

    def __enter__(self) -> "SpotNoisePipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def plan(self):
        """The runtime's resolved decomposition plan.

        ``None`` unless the configuration used ``backend="auto"`` and a
        frame has been synthesised (the planner needs the field before
        it can price the workload — see
        :class:`~repro.parallel.planner.DecompositionPlanner`).
        """
        return self.runtime.plan

    # -- stage 1 ---------------------------------------------------------------
    def read_data(self, field: VectorField2D) -> None:
        """Accept a new data frame; particle state is preserved.

        The new field must match the pipeline's grid geometry — both the
        domain bounds (particle positions live in world space) and the
        grid shape (spot sizes and tile guard bands were derived from the
        cell size at construction).
        """
        if field.grid.bounds != self.field.grid.bounds:
            raise PipelineError(
                "new field has different domain bounds; build a new pipeline instead"
            )
        if tuple(field.grid.shape) != tuple(self.field.grid.shape):
            raise PipelineError(
                f"new field has different grid shape {tuple(field.grid.shape)} "
                f"(pipeline built for {tuple(self.field.grid.shape)}); "
                "build a new pipeline instead"
            )
        with self.timer.time("read"):
            self.field = field
            self.advector.field = field

    # -- stage 2 ---------------------------------------------------------------
    def advect(self) -> None:
        """Advance the particle population one animation step."""
        with self.timer.time("advect"):
            self.advector.advance(self.particles)

    # -- stage 3 ---------------------------------------------------------------
    def synthesize(self) -> "tuple[np.ndarray, RuntimeReport]":
        """Generate the spot noise texture for the current particles."""
        with self.timer.time("synthesize"):
            weights = self.particles.fade_weights(self.policy.fade_frames)
            if np.any(weights != 1.0):
                faded = ParticleSet(
                    self.particles.positions,
                    self.particles.intensities * weights,
                    self.particles.ages,
                    self.particles.lifetimes,
                )
            else:
                faded = self.particles
            return self.runtime.synthesize(self.field, faded)

    # -- stage 4 ---------------------------------------------------------------
    def render(
        self,
        texture: np.ndarray,
        scalar: Optional[ScalarField2D] = None,
        colormap: Optional[Colormap] = None,
        mask: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, Optional[np.ndarray]]":
        """Normalise the texture and compose the display image.

        Returns ``(display01, rgb_or_None)``; the RGB image is built when a
        scalar overlay or mask is supplied.
        """
        with self.timer.time("render"):
            if self.config.post_filter == "highpass":
                texture_for_display = highpass_texture(texture)
                display = contrast_stretch(texture_for_display)
            elif self.config.post_filter == "equalize":
                display = histogram_equalize(texture)
            else:
                display = contrast_stretch(texture)
            rgb = None
            if scalar is not None or mask is not None:
                scalar01 = None
                if scalar is not None:
                    shape = (self.config.texture_size, self.config.texture_size)
                    scalar01 = scalar.normalized().resampled_to(shape)
                rgb = compose_scene(
                    display, scalar01, colormap or rainbow(), mask
                )
            return display, rgb

    # -- stages 1-2 without synthesis --------------------------------------------
    def advance_only(self, field: Optional[VectorField2D] = None) -> None:
        """Run stages 1-2 and count the frame without synthesising.

        Used to fast-forward to a frame of interest: the evolution state
        (particles, RNG) after ``advance_only`` is bit-identical to the
        state after a full :meth:`step`, because stages 3-4 never touch
        it.  The animation streaming layer (:mod:`repro.anim`) replays
        skipped frames this way when resuming a sequence.
        """
        if field is not None:
            self.read_data(field)
        self.advect()
        self.frame_index += 1

    # -- evolution state capture/restore -----------------------------------------
    def capture_state(self) -> dict:
        """Snapshot everything that evolves across frames.

        The snapshot covers the particle population (positions,
        intensities, ages, lifetimes), the RNG state (one generator is
        threaded through seeding, advection and respawning), the frame
        counter and the advection step.  Restoring it into a pipeline
        built from the same configuration reproduces subsequent frames
        bit-for-bit — the contract the resumable sequence checkpoints of
        :mod:`repro.anim` rely on.
        """
        return {
            "positions": self.particles.positions.copy(),
            "intensities": self.particles.intensities.copy(),
            "ages": self.particles.ages.copy(),
            "lifetimes": self.particles.lifetimes.copy(),
            "rng_state": copy.deepcopy(self.rng.bit_generator.state),
            "frame_index": int(self.frame_index),
            "dt": float(self.advector.dt),
        }

    def restore_state(self, state: dict) -> None:
        """Install a :meth:`capture_state` snapshot into this pipeline.

        The pipeline must have been built from the same configuration
        (same particle count and RNG family); the snapshot overwrites the
        particle arrays in place, the generator state, the frame counter
        and the advection step.  Restoration is atomic: everything is
        validated (and the fallible RNG-state install performed) before
        the first in-place array write, so a rejected snapshot leaves
        the pipeline exactly as it was.
        """
        positions = np.asarray(state["positions"], dtype=np.float64)
        if positions.shape != self.particles.positions.shape:
            raise PipelineError(
                f"state holds {positions.shape[0]} particles; pipeline was built "
                f"for {len(self.particles)} — configurations do not match"
            )
        n = len(self.particles)
        intensities = np.asarray(state["intensities"], dtype=np.float64)
        ages = np.asarray(state["ages"], dtype=np.int64)
        lifetimes = np.asarray(state["lifetimes"], dtype=np.int64)
        for name, arr in (("intensities", intensities), ("ages", ages), ("lifetimes", lifetimes)):
            if arr.shape != (n,):
                raise PipelineError(
                    f"state {name} has shape {arr.shape}, expected ({n},)"
                )
        frame_index = int(state["frame_index"])
        dt = float(state["dt"])
        try:
            self.rng.bit_generator.state = state["rng_state"]
        except (KeyError, TypeError, ValueError) as exc:
            raise PipelineError(f"incompatible RNG state in snapshot: {exc}") from exc
        self.particles.positions[:] = positions
        self.particles.intensities[:] = intensities
        self.particles.ages[:] = ages
        self.particles.lifetimes[:] = lifetimes
        self.frame_index = frame_index
        self.advector.dt = dt

    # -- whole frame -------------------------------------------------------------
    def step(
        self,
        field: Optional[VectorField2D] = None,
        scalar: Optional[ScalarField2D] = None,
        colormap: Optional[Colormap] = None,
        mask: Optional[np.ndarray] = None,
    ) -> FrameResult:
        """Run stages 1-4 once and return the frame."""
        if field is not None:
            self.read_data(field)
        self.advect()
        texture, report = self.synthesize()
        display, rgb = self.render(texture, scalar, colormap, mask)
        result = FrameResult(
            texture=texture,
            display=display,
            image=rgb,
            report=report,
            frame_index=self.frame_index,
        )
        self.frame_index += 1
        return result

    def textures_per_second(self) -> float:
        """Measured rate over steps 2+3 — the paper's table metric."""
        return self.timer.textures_per_second(self.frame_index)
