"""Animation driving.

"Dynamic phenomena can be displayed via an animated sequence of spot
noise images" (section 2).  :class:`AnimationLoop` couples a frame
*source* (a callable producing the vector field — and optionally a scalar
overlay — for frame t) to a pipeline, collects frame-rate statistics, and
can write the sequence to disk as numbered PGM/PPM files.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from repro.core.pipeline import FrameResult, SpotNoisePipeline
from repro.errors import PipelineError
from repro.fields.scalarfield import ScalarField2D
from repro.fields.vectorfield import VectorField2D
from repro.viz.colormap import Colormap
from repro.viz.image import write_pgm, write_ppm

FrameSource = Callable[[int], Union[VectorField2D, "tuple[VectorField2D, ScalarField2D]"]]


@dataclass
class AnimationStats:
    n_frames: int
    total_seconds: float
    textures_per_second: float
    stage_seconds: "dict[str, float]"


class AnimationLoop:
    """Run a pipeline over a frame source.

    Parameters
    ----------
    pipeline:
        A configured :class:`~repro.core.pipeline.SpotNoisePipeline`.
    source:
        ``source(t)`` returns the field (or ``(field, scalar)``) for frame
        ``t`` — typically a simulation step (the smog model) or a database
        read (the DNS browser).
    colormap:
        Colormap for the scalar overlay, when the source provides one.
    """

    def __init__(
        self,
        pipeline: SpotNoisePipeline,
        source: FrameSource,
        colormap: Optional[Colormap] = None,
        mask: Optional[np.ndarray] = None,
    ):
        self.pipeline = pipeline
        self.source = source
        self.colormap = colormap
        self.mask = mask
        self.frames: List[FrameResult] = []

    def run(self, n_frames: int, keep_frames: bool = True) -> AnimationStats:
        """Advance *n_frames* frames; returns rate statistics."""
        if n_frames < 1:
            raise PipelineError(f"n_frames must be >= 1, got {n_frames}")
        self.pipeline.timer.reset()
        start_index = self.pipeline.frame_index
        for t in range(n_frames):
            item = self.source(t)
            if isinstance(item, tuple):
                field, scalar = item
            else:
                field, scalar = item, None
            frame = self.pipeline.step(
                field=field, scalar=scalar, colormap=self.colormap, mask=self.mask
            )
            if keep_frames:
                self.frames.append(frame)
        produced = self.pipeline.frame_index - start_index
        stage = self.pipeline.timer.report()
        busy = stage.get("advect", 0.0) + stage.get("synthesize", 0.0)
        return AnimationStats(
            n_frames=produced,
            total_seconds=sum(stage.values()),
            textures_per_second=(produced / busy) if busy > 0 else float("inf"),
            stage_seconds=stage,
        )

    def write_sequence(self, directory: "str | os.PathLike", prefix: str = "frame") -> List[str]:
        """Write collected frames as ``prefix_0000.pgm`` (or ``.ppm`` with RGB)."""
        os.makedirs(directory, exist_ok=True)
        paths: List[str] = []
        for i, frame in enumerate(self.frames):
            if frame.image is not None:
                path = os.path.join(directory, f"{prefix}_{i:04d}.ppm")
                write_ppm(path, frame.image)
            else:
                path = os.path.join(directory, f"{prefix}_{i:04d}.pgm")
                write_pgm(path, frame.display)
            paths.append(path)
        return paths
