"""Configuration objects for spot noise synthesis.

Every knob the paper mentions is here: spot count, spot size/profile, the
anisotropic transform strength, bent-spot mesh resolution, texture size,
tiling, rendering mode and the parallel decomposition.  Configs are
immutable dataclasses — safe to share across process groups and cheap to
pickle into worker processes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Literal, Optional

from repro.errors import PipelineError
from repro.spots.bent import BentSpotConfig

SpotMode = Literal["standard", "bent"]
RenderMode = Literal["exact", "sampled"]
RasterBackend = Literal["exact", "batched"]
PartitionStrategy = Literal["round_robin", "block", "spatial"]
PostFilter = Literal["none", "highpass", "equalize"]
Seeding = Literal["uniform", "jittered", "cell_area"]


@dataclass(frozen=True)
class BentConfig:
    """Bent-spot parameters relative to the data grid.

    Lengths are expressed in *grid cells* so the same config adapts to any
    data set; :meth:`resolve` turns them into world units for a given grid
    cell size.
    """

    n_along: int = 32
    n_across: int = 17
    length_cells: float = 4.0
    width_cells: float = 1.2
    integrator: str = "rk4"

    def resolve(self, cell_size: float) -> BentSpotConfig:
        if cell_size <= 0:
            raise PipelineError(f"cell_size must be positive, got {cell_size}")
        return BentSpotConfig(
            n_along=self.n_along,
            n_across=self.n_across,
            length=self.length_cells * cell_size,
            width=self.width_cells * cell_size,
            integrator=self.integrator,
        )


@dataclass(frozen=True)
class SpotNoiseConfig:
    """Complete synthesis configuration.

    Attributes
    ----------
    n_spots:
        Spots per texture (2500 in §5.1, 40 000 in §5.2).
    texture_size:
        Final texture resolution (512 in the paper).
    spot_mode:
        ``"standard"`` — 4-vertex anisotropically stretched quads;
        ``"bent"`` — streamline-swept meshes.
    spot_radius_cells:
        Undeformed spot radius in grid cells (standard spots).
    anisotropy:
        Stretch strength of the flow transform (0 = circles).
    profile:
        Spot profile name (``disk``, ``gaussian``, ``cone``, ``ring``).
    profile_resolution:
        Texel resolution of the rasterised spot texture.
    bent:
        Bent-spot mesh parameters (used when ``spot_mode == "bent"``).
    intensity:
        Spot intensity amplitude (weights are +/- this value).
    render_mode:
        ``"exact"`` scanline rasterisation or ``"sampled"`` splatting.
    raster_backend:
        Implementation of the exact scanline path: ``"batched"`` (the
        default) rasterises all quads of a draw call in vectorised numpy
        passes; ``"exact"`` is the per-quad reference loop kept as the
        oracle.  Both produce bit-identical textures (the batched
        renderer reproduces the reference's arithmetic and accumulation
        order); ignored when ``render_mode`` is ``"sampled"``.
    samples_per_edge:
        Sampling density of the splatting renderer.
    n_groups:
        Process groups (= simulated graphics pipes) for divide and conquer.
    processors_per_group:
        Simulated processors per group (affects modelled timing only).
    partition:
        Spot partitioning strategy; ``"spatial"`` enables texture tiling.
    guard_px:
        Tile guard band (pixels) when tiling.
    backend:
        Execution backend name: ``serial``, ``thread``, ``process`` or
        ``sharedmem`` (zero-copy shared-memory process groups) — or
        ``auto``, which defers the whole decomposition (backend, group
        count, partition) to the cost-model
        :class:`~repro.parallel.planner.DecompositionPlanner` when the
        runtime first sees a field.
    seed:
        RNG seed for spot positions/intensities.
    post_filter:
        Texture-level post-filter applied in the render stage:
        ``"none"``, ``"highpass"`` (subtract a Gaussian-blurred copy —
        the map-level filtering of section 2) or ``"equalize"``
        (histogram equalisation for maximal contrast).
    seeding:
        Spot position distribution: ``"uniform"``, ``"jittered"``
        (stratified, lower clumping) or ``"cell_area"`` — density
        proportional to inverse cell area, the non-uniform-grid
        enhancement of [4] that keeps texture granularity constant in
        *data* space on stretched grids.
    """

    n_spots: int = 2500
    texture_size: int = 512
    spot_mode: SpotMode = "standard"
    spot_radius_cells: float = 1.0
    anisotropy: float = 1.0
    profile: str = "gaussian"
    profile_resolution: int = 32
    bent: BentConfig = field(default_factory=BentConfig)
    intensity: float = 1.0
    render_mode: RenderMode = "sampled"
    raster_backend: RasterBackend = "batched"
    samples_per_edge: int = 2
    n_groups: int = 1
    processors_per_group: int = 1
    partition: PartitionStrategy = "round_robin"
    guard_px: int = 24
    backend: str = "serial"
    seed: Optional[int] = 0
    post_filter: PostFilter = "none"
    seeding: Seeding = "uniform"

    def __post_init__(self) -> None:
        if self.n_spots < 1:
            raise PipelineError(f"n_spots must be >= 1, got {self.n_spots}")
        if self.texture_size < 8:
            raise PipelineError(f"texture_size must be >= 8, got {self.texture_size}")
        if self.spot_mode not in ("standard", "bent"):
            raise PipelineError(f"unknown spot mode {self.spot_mode!r}")
        if self.spot_radius_cells <= 0:
            raise PipelineError("spot_radius_cells must be positive")
        if self.anisotropy < 0:
            raise PipelineError("anisotropy must be >= 0")
        if self.render_mode not in ("exact", "sampled"):
            raise PipelineError(f"unknown render mode {self.render_mode!r}")
        if self.raster_backend not in ("exact", "batched"):
            raise PipelineError(f"unknown raster backend {self.raster_backend!r}")
        if self.samples_per_edge < 1:
            raise PipelineError("samples_per_edge must be >= 1")
        if self.n_groups < 1:
            raise PipelineError("n_groups must be >= 1")
        if self.processors_per_group < 1:
            raise PipelineError("processors_per_group must be >= 1")
        if self.partition not in ("round_robin", "block", "spatial"):
            raise PipelineError(f"unknown partition strategy {self.partition!r}")
        if self.backend not in ("serial", "thread", "process", "sharedmem", "auto"):
            raise PipelineError(f"unknown backend {self.backend!r}")
        if self.guard_px < 0:
            raise PipelineError("guard_px must be >= 0")
        if self.intensity <= 0:
            raise PipelineError("intensity must be positive")
        if self.post_filter not in ("none", "highpass", "equalize"):
            raise PipelineError(f"unknown post filter {self.post_filter!r}")
        if self.seeding not in ("uniform", "jittered", "cell_area"):
            raise PipelineError(f"unknown seeding strategy {self.seeding!r}")

    # -- convenience constructors matching the paper -----------------------------
    @classmethod
    def atmospheric(cls, **overrides) -> "SpotNoiseConfig":
        """Section 5.1: 2500 bent spots, 32x17 meshes, 512^2 texture."""
        base = cls(
            n_spots=2500,
            spot_mode="bent",
            bent=BentConfig(n_along=32, n_across=17, length_cells=4.0, width_cells=1.2),
            texture_size=512,
        )
        return replace(base, **overrides)

    @classmethod
    def turbulence(cls, **overrides) -> "SpotNoiseConfig":
        """Section 5.2: 40 000 bent spots, 16x3 meshes, 512^2 texture."""
        base = cls(
            n_spots=40_000,
            spot_mode="bent",
            bent=BentConfig(n_along=16, n_across=3, length_cells=3.0, width_cells=0.8),
            texture_size=512,
        )
        return replace(base, **overrides)

    def with_overrides(self, **overrides) -> "SpotNoiseConfig":
        return replace(self, **overrides)

    def fingerprint(self) -> str:
        """Stable SHA-256 digest of every configuration field.

        Two configs fingerprint equal iff they are equal, so the digest
        can stand in for the config in content-addressed cache keys
        (:mod:`repro.service`).  All fields participate — including
        execution-shape knobs like ``raster_backend``, ``backend`` and
        ``partition`` whose outputs are proven bit-identical by the
        equivalence tests: keying conservatively on them can only cause
        an extra render, never a wrong cache hit.
        """
        parts = []
        for name in sorted(self.__dataclass_fields__):
            value = getattr(self, name)
            if isinstance(value, BentConfig):
                value = ";".join(
                    f"{k}={getattr(value, k)!r}"
                    for k in sorted(value.__dataclass_fields__)
                )
            parts.append(f"{name}={value!r}")
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    def vertices_per_spot(self) -> int:
        if self.spot_mode == "bent":
            return self.bent.n_along * self.bent.n_across
        return 4

    def quads_per_spot(self) -> int:
        if self.spot_mode == "bent":
            return (self.bent.n_along - 1) * (self.bent.n_across - 1)
        return 1
