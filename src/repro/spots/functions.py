"""Spot intensity profiles.

A profile gives the spot function ``h`` on the unit square: ``weight(s, t)``
with local coordinates ``s, t`` in ``[-1, 1]`` and ``h = 0`` outside the
unit disk/square.  Profiles are rasterised once into a small texture
(:meth:`SpotProfile.make_texture`) which the graphics pipe then maps onto
every spot quad or bent-spot mesh — mirroring how the real implementation
keeps one spot texture resident on the InfiniteReality and re-uses it for
all spots.
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

from repro.errors import SpotError


class SpotProfile:
    """Base class; subclasses implement :meth:`weight`."""

    #: registry name, set by subclasses
    name: str = "abstract"

    def weight(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Intensity at local coordinates ``(s, t)`` in ``[-1, 1]^2``."""
        raise NotImplementedError

    def make_texture(self, resolution: int = 32) -> np.ndarray:
        """Rasterise the profile to a ``(resolution, resolution)`` texture.

        Texel centres sample the open square, so the texture is symmetric
        and has no half-pixel bias.
        """
        if resolution < 2:
            raise SpotError(f"texture resolution must be >= 2, got {resolution}")
        c = (np.arange(resolution) + 0.5) / resolution * 2.0 - 1.0
        S, T = np.meshgrid(c, c)
        return np.ascontiguousarray(self.weight(S, T), dtype=np.float64)

    def footprint_fraction(self, resolution: int = 64) -> float:
        """Fraction of the unit square covered by non-zero weight.

        Used by sanity tests for the "small compared to the texture size"
        requirement of section 2.
        """
        tex = self.make_texture(resolution)
        return float((np.abs(tex) > 1e-12).mean())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class DiskProfile(SpotProfile):
    """Uniform unit disk — the paper's "usually a small circle is used"."""

    name = "disk"

    def weight(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        r2 = np.asarray(s) ** 2 + np.asarray(t) ** 2
        return (r2 <= 1.0).astype(np.float64)


class GaussianProfile(SpotProfile):
    """Gaussian fall-off truncated at the unit disk.

    Softer than the disk, trading a little contrast for smoother textures.
    """

    name = "gaussian"

    def __init__(self, sigma: float = 0.45):
        if sigma <= 0:
            raise SpotError(f"sigma must be positive, got {sigma}")
        self.sigma = float(sigma)

    def weight(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        r2 = np.asarray(s) ** 2 + np.asarray(t) ** 2
        w = np.exp(-0.5 * r2 / self.sigma**2)
        return np.where(r2 <= 1.0, w, 0.0)


class ConeProfile(SpotProfile):
    """Linear fall-off from 1 at the centre to 0 at the unit circle."""

    name = "cone"

    def weight(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        r = np.sqrt(np.asarray(s) ** 2 + np.asarray(t) ** 2)
        return np.clip(1.0 - r, 0.0, 1.0)


class RingProfile(SpotProfile):
    """An annulus; produces band-pass textures useful for filtering studies."""

    name = "ring"

    def __init__(self, inner: float = 0.5, outer: float = 1.0):
        if not (0.0 <= inner < outer <= 1.0):
            raise SpotError(f"need 0 <= inner < outer <= 1, got inner={inner}, outer={outer}")
        self.inner = float(inner)
        self.outer = float(outer)

    def weight(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        r = np.sqrt(np.asarray(s) ** 2 + np.asarray(t) ** 2)
        return ((r >= self.inner) & (r <= self.outer)).astype(np.float64)


class DoGProfile(SpotProfile):
    """Difference-of-Gaussians: the *filtered spot* of [4].

    Positive centre, negative surround, zero integral within the unit
    disk — textures built from these spots are high-pass by construction,
    preserving fine directional detail (the spot-filtering enhancement of
    the Vis'95 paper, selectable via ``SpotNoiseConfig(profile="dog")``).
    """

    name = "dog"

    def __init__(self, sigma: float = 0.35, ratio: float = 1.8):
        # Validated inside dog_profile_weights at call time as well; check
        # here so construction fails fast.
        if sigma <= 0 or ratio <= 1.0:
            raise SpotError(f"need sigma > 0 and ratio > 1, got sigma={sigma}, ratio={ratio}")
        self.sigma = float(sigma)
        self.ratio = float(ratio)

    def weight(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        from repro.spots.filtering import dog_profile_weights

        return dog_profile_weights(s, t, self.sigma, self.ratio)


_PROFILES: Dict[str, Type[SpotProfile]] = {
    cls.name: cls
    for cls in (DiskProfile, GaussianProfile, ConeProfile, RingProfile, DoGProfile)
}


def get_profile(name: str, **kwargs) -> SpotProfile:
    """Instantiate a registered profile by name."""
    try:
        cls = _PROFILES[name]
    except KeyError:
        raise SpotError(f"unknown spot profile {name!r}; available: {sorted(_PROFILES)}") from None
    return cls(**kwargs)
