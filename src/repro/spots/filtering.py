"""Spot and texture filtering.

The enhancements paper [4] adds *spot filtering*: suppressing the low
spatial frequencies of the spot so the synthesised texture keeps fine,
directional detail instead of washing out.  We provide the standard
difference-of-Gaussians realisation at the spot level plus texture-level
post-filters (high-pass, contrast stretch, histogram equalisation) that
the pipeline can apply after blending ("additional spot filtering
operations may be applied to the map", section 2).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.errors import SpotError


def dog_profile_weights(
    s: np.ndarray, t: np.ndarray, sigma: float = 0.35, ratio: float = 1.8
) -> np.ndarray:
    """Difference-of-Gaussians spot weight on local coords ``(s, t)``.

    ``G(sigma) - G(sigma * ratio)`` normalised to unit peak, truncated at
    the unit disk.  Its integral is close to zero, so a texture built from
    DoG spots is already approximately high-pass — the spot-level filtering
    of [4].
    """
    if sigma <= 0 or ratio <= 1.0:
        raise SpotError(f"need sigma > 0 and ratio > 1, got sigma={sigma}, ratio={ratio}")
    r2 = np.asarray(s) ** 2 + np.asarray(t) ** 2
    # Integral-normalised Gaussians (positive centre, negative surround),
    # with the surround rescaled so that the masses *inside the unit disk*
    # cancel exactly: the mass of a normalised 2-D Gaussian within radius 1
    # is 1 - exp(-1 / (2 sigma^2)), so truncation does not unbalance the
    # filter.
    s1 = sigma
    s2 = sigma * ratio
    g1 = np.exp(-0.5 * r2 / s1**2) / (2.0 * np.pi * s1**2)
    g2 = np.exp(-0.5 * r2 / s2**2) / (2.0 * np.pi * s2**2)
    mass1 = 1.0 - np.exp(-0.5 / s1**2)
    mass2 = 1.0 - np.exp(-0.5 / s2**2)
    w = g1 - (mass1 / mass2) * g2
    peak = np.abs(w).max() if np.size(w) else 1.0
    if peak > 0:
        w = w / peak
    return np.where(r2 <= 1.0, w, 0.0)


def highpass_texture(texture: np.ndarray, sigma_pixels: float = 8.0) -> np.ndarray:
    """Subtract a Gaussian-blurred copy: texture-level high-pass filter."""
    if sigma_pixels <= 0:
        raise SpotError(f"sigma_pixels must be positive, got {sigma_pixels}")
    tex = np.asarray(texture, dtype=np.float64)
    if tex.ndim != 2:
        raise SpotError(f"texture must be 2-D, got shape {tex.shape}")
    low = ndimage.gaussian_filter(tex, sigma=sigma_pixels, mode="nearest")
    return tex - low


def contrast_stretch(texture: np.ndarray, lo_pct: float = 1.0, hi_pct: float = 99.0) -> np.ndarray:
    """Affine rescale of the given percentile range to [0, 1] (clipped).

    The final display step: spot noise textures are zero-mean signed
    intensity sums and must be mapped to displayable grey levels.
    """
    if not (0.0 <= lo_pct < hi_pct <= 100.0):
        raise SpotError(f"need 0 <= lo < hi <= 100, got {lo_pct}, {hi_pct}")
    tex = np.asarray(texture, dtype=np.float64)
    lo, hi = np.percentile(tex, [lo_pct, hi_pct])
    if hi - lo <= 0:
        return np.zeros_like(tex)
    return np.clip((tex - lo) / (hi - lo), 0.0, 1.0)


def histogram_equalize(texture: np.ndarray) -> np.ndarray:
    """Exact histogram equalisation to [0, 1].

    Each pixel maps to its empirical-CDF value (midpoint rule over ties),
    so the output histogram is as flat as the tie structure allows —
    maximal perceived texture contrast.
    """
    tex = np.asarray(texture, dtype=np.float64)
    if tex.size == 0:
        raise SpotError("cannot equalise an empty texture")
    flat = tex.ravel()
    values, inverse, counts = np.unique(flat, return_inverse=True, return_counts=True)
    if values.size == 1:
        return np.zeros_like(tex)
    cum = np.cumsum(counts).astype(np.float64)
    # Midpoint of each tie group's rank range, normalised to [0, 1].
    mid = (cum - 0.5 * counts) / flat.size
    out = (mid[inverse] - mid.min()) / (mid.max() - mid.min())
    return out.reshape(tex.shape)
