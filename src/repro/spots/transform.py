"""Flow-driven affine spot transformation.

"By modifying the shape of the spot as a function of the data, the data
are visualized by texture" (section 2).  The classic deformation (van
Wijk '91 / de Leeuw–van Wijk '95) stretches each circular spot into an
ellipse aligned with the local velocity: major axis scaled by a factor
that grows with speed, minor axis shrunk by the same factor so the area —
and hence the texture's second-order statistics — is preserved.

The paper performs this transform *in software on the processors* rather
than via per-spot OpenGL matrices, to avoid geometry-processor
synchronisation; accordingly these functions produce fully transformed
world-space vertex data ready to stream to a graphics pipe, and the
machine model charges their cost to ``genP``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SpotError


def anisotropy_factors(speeds: np.ndarray, scale: float, v_ref: float) -> np.ndarray:
    """Per-spot stretch factor ``1 + scale * |v| / v_ref`` (clipped at 1).

    ``v_ref`` normalises speed so the same *scale* knob behaves comparably
    across data sets; ``scale = 0`` keeps spots circular.
    """
    if v_ref <= 0:
        raise SpotError(f"v_ref must be positive, got {v_ref}")
    if scale < 0:
        raise SpotError(f"scale must be >= 0, got {scale}")
    speeds = np.asarray(speeds, dtype=np.float64)
    return 1.0 + scale * np.abs(speeds) / v_ref


def flow_transforms(velocities: np.ndarray, radius: float, scale: float, v_ref: float) -> np.ndarray:
    """Per-spot 2x2 affine matrices mapping unit-spot coords to world offsets.

    Parameters
    ----------
    velocities:
        ``(N, 2)`` local flow vectors at the spot centres.
    radius:
        Undeformed spot radius in world units.
    scale:
        Anisotropy strength (0 = circles).
    v_ref:
        Speed normalisation (typically the field's max magnitude).

    Returns
    -------
    ``(N, 2, 2)`` matrices ``M`` such that a local spot point ``p`` in the
    unit disk maps to ``center + M @ p``.  Columns are the (scaled) major
    and minor axes; area is preserved: ``det M = radius^2`` for all spots.
    Zero-velocity spots stay circular with an arbitrary (x-aligned) axis.
    """
    if radius <= 0:
        raise SpotError(f"radius must be positive, got {radius}")
    vel = np.asarray(velocities, dtype=np.float64)
    if vel.ndim != 2 or vel.shape[1] != 2:
        raise SpotError(f"velocities must be (N, 2), got {vel.shape}")

    speed = np.hypot(vel[:, 0], vel[:, 1])
    f = anisotropy_factors(speed, scale, v_ref)

    # Unit flow direction; x-axis fallback where the flow vanishes.
    safe = np.where(speed > 0, speed, 1.0)
    ex = np.where(speed > 0, vel[:, 0] / safe, 1.0)
    ey = np.where(speed > 0, vel[:, 1] / safe, 0.0)

    a = radius * f          # major semi-axis (along flow)
    b = radius / f          # minor semi-axis (across flow); a*b = radius^2

    m = np.empty((vel.shape[0], 2, 2), dtype=np.float64)
    m[:, 0, 0] = a * ex
    m[:, 1, 0] = a * ey
    m[:, 0, 1] = -b * ey
    m[:, 1, 1] = b * ex
    return m


# Unit-square corner offsets in spot-local coordinates, counter-clockwise,
# and the matching texture coordinates.  One textured quad per standard spot
# — "standard spots consist of four vertices" (section 3).
_QUAD_LOCAL = np.array([[-1.0, -1.0], [1.0, -1.0], [1.0, 1.0], [-1.0, 1.0]])
_QUAD_UV = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


def spot_quads(centers: np.ndarray, transforms: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """World-space quads for standard spots.

    Returns
    -------
    vertices:
        ``(N, 4, 2)`` world coordinates, counter-clockwise.
    uvs:
        ``(N, 4, 2)`` texture coordinates into the spot profile texture
        (identical for every spot, broadcast for convenience).
    """
    centers = np.asarray(centers, dtype=np.float64)
    transforms = np.asarray(transforms, dtype=np.float64)
    if centers.ndim != 2 or centers.shape[1] != 2:
        raise SpotError(f"centers must be (N, 2), got {centers.shape}")
    if transforms.shape != (centers.shape[0], 2, 2):
        raise SpotError(
            f"transforms must be (N, 2, 2) matching centers, got {transforms.shape}"
        )
    # vertices[n, c] = centers[n] + transforms[n] @ _QUAD_LOCAL[c]
    verts = centers[:, None, :] + np.einsum("nij,cj->nci", transforms, _QUAD_LOCAL)
    uvs = np.broadcast_to(_QUAD_UV, (centers.shape[0], 4, 2)).copy()
    return verts, uvs


def quad_areas(vertices: np.ndarray) -> np.ndarray:
    """Signed area of each quad via the shoelace formula, ``(N, 4, 2) -> (N,)``.

    Property tests use this to confirm the transform preserves area.
    """
    v = np.asarray(vertices, dtype=np.float64)
    if v.ndim != 3 or v.shape[1:] != (4, 2):
        raise SpotError(f"vertices must be (N, 4, 2), got {v.shape}")
    x = v[..., 0]
    y = v[..., 1]
    xn = np.roll(x, -1, axis=1)
    yn = np.roll(y, -1, axis=1)
    return 0.5 * np.sum(x * yn - xn * y, axis=1)
