"""Spot definition and shaping.

The spot function ``h(x)`` of section 2 ("a function everywhere zero
except for an area that is small compared to the texture size") lives
here, together with the two data-driven shaping mechanisms of the paper:

* the classic affine deformation — scale along the local flow direction,
  preserving area — for *standard spots* (4-vertex textured quads);
* *bent spots* [4] — a textured mesh tiled over a surface obtained by
  advecting a streamline — for highly curved/turbulent flows.
"""

from repro.spots.functions import (
    SpotProfile,
    DiskProfile,
    GaussianProfile,
    ConeProfile,
    RingProfile,
    DoGProfile,
    get_profile,
)
from repro.spots.transform import flow_transforms, spot_quads, anisotropy_factors
from repro.spots.bent import BentSpotConfig, bent_spot_meshes
from repro.spots.filtering import (
    dog_profile_weights,
    highpass_texture,
    contrast_stretch,
    histogram_equalize,
)
from repro.spots.distribution import (
    uniform_positions,
    jittered_grid_positions,
    density_weighted_positions,
    cell_area_density,
    seed_positions,
    signed_intensities,
    gaussian_intensities,
)

__all__ = [
    "SpotProfile",
    "DiskProfile",
    "GaussianProfile",
    "ConeProfile",
    "RingProfile",
    "DoGProfile",
    "get_profile",
    "flow_transforms",
    "spot_quads",
    "anisotropy_factors",
    "BentSpotConfig",
    "bent_spot_meshes",
    "dog_profile_weights",
    "highpass_texture",
    "contrast_stretch",
    "histogram_equalize",
    "uniform_positions",
    "jittered_grid_positions",
    "density_weighted_positions",
    "cell_area_density",
    "seed_positions",
    "signed_intensities",
    "gaussian_intensities",
]
