"""Random spot position and intensity distributions.

Spot noise needs "a large number of randomly positioned spots with a
random intensity" of zero mean (section 2).  Besides plain uniform
sampling we provide jittered-grid sampling (lower clumping variance, used
by the figure-1 bench for a cleaner reference texture) and
density-weighted sampling for non-uniform grids, where [4] places more
spots where cells are small so texture granularity stays uniform in
*data* space.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SpotError
from repro.utils.rng import as_rng

Bounds = "tuple[float, float, float, float]"


def uniform_positions(n: int, bounds, seed=None) -> np.ndarray:
    """``(n, 2)`` positions uniform over *bounds* = (x0, x1, y0, y1)."""
    if n < 0:
        raise SpotError(f"cannot draw {n} positions")
    rng = as_rng(seed)
    x0, x1, y0, y1 = bounds
    if not (x1 > x0 and y1 > y0):
        raise SpotError(f"degenerate bounds {bounds}")
    out = np.empty((n, 2), dtype=np.float64)
    out[:, 0] = rng.uniform(x0, x1, size=n)
    out[:, 1] = rng.uniform(y0, y1, size=n)
    return out


def jittered_grid_positions(n: int, bounds, seed=None) -> np.ndarray:
    """Approximately *n* positions from a jittered (stratified) grid.

    The domain is divided into roughly-square strata, one sample placed
    uniformly inside each; exactly *n* points are returned by dropping a
    random subset of the surplus strata.
    """
    if n < 0:
        raise SpotError(f"cannot draw {n} positions")
    if n == 0:
        return np.empty((0, 2))
    rng = as_rng(seed)
    x0, x1, y0, y1 = bounds
    w, h = x1 - x0, y1 - y0
    if not (w > 0 and h > 0):
        raise SpotError(f"degenerate bounds {bounds}")
    aspect = w / h
    ncols = max(1, int(np.ceil(np.sqrt(n * aspect))))
    nrows = max(1, int(np.ceil(n / ncols)))
    cx = x0 + (np.arange(ncols) + 0.0) * (w / ncols)
    cy = y0 + (np.arange(nrows) + 0.0) * (h / nrows)
    X, Y = np.meshgrid(cx, cy)
    pts = np.stack([X.ravel(), Y.ravel()], axis=-1)
    pts[:, 0] += rng.uniform(0.0, w / ncols, size=pts.shape[0])
    pts[:, 1] += rng.uniform(0.0, h / nrows, size=pts.shape[0])
    keep = rng.permutation(pts.shape[0])[:n]
    return pts[np.sort(keep)]


def density_weighted_positions(n: int, density: np.ndarray, bounds, seed=None) -> np.ndarray:
    """``(n, 2)`` positions with probability proportional to a density raster.

    *density* is a non-negative ``(ny, nx)`` array over *bounds*.  Cells are
    chosen by weighted sampling and positions jittered uniformly within the
    chosen cell — the non-uniform-grid spot placement of [4].
    """
    if n < 0:
        raise SpotError(f"cannot draw {n} positions")
    rho = np.asarray(density, dtype=np.float64)
    if rho.ndim != 2:
        raise SpotError(f"density must be 2-D, got shape {rho.shape}")
    if np.any(rho < 0):
        raise SpotError("density must be non-negative")
    total = rho.sum()
    if total <= 0:
        raise SpotError("density must have positive mass")
    rng = as_rng(seed)
    x0, x1, y0, y1 = bounds
    ny, nx = rho.shape
    flat = (rho / total).ravel()
    choice = rng.choice(flat.size, size=n, p=flat)
    iy, ix = np.divmod(choice, nx)
    dx = (x1 - x0) / nx
    dy = (y1 - y0) / ny
    out = np.empty((n, 2), dtype=np.float64)
    out[:, 0] = x0 + (ix + rng.uniform(0.0, 1.0, size=n)) * dx
    out[:, 1] = y0 + (iy + rng.uniform(0.0, 1.0, size=n)) * dy
    return out


def cell_area_density(grid) -> np.ndarray:
    """Inverse-cell-area density raster for a structured grid.

    On a stretched rectilinear grid, uniform world-space spot placement
    makes the texture coarse where cells are small (one spot covers many
    cells of refined region in *data* space).  [4] counteracts this by
    placing spots with probability inversely proportional to cell area, so
    granularity stays constant per *cell*.  Returns a ``(ny-1, nx-1)``
    density over the grid cells, suitable for
    :func:`density_weighted_positions`.  Constant (uniform) for a regular
    grid.
    """
    x = np.asarray(grid.x_coords(), dtype=np.float64)
    y = np.asarray(grid.y_coords(), dtype=np.float64)
    areas = np.diff(y)[:, None] * np.diff(x)[None, :]
    if np.any(areas <= 0):
        raise SpotError("grid has non-positive cell areas")
    return 1.0 / areas


def cell_uniform_positions(n: int, grid, seed=None) -> np.ndarray:
    """``(n, 2)`` positions with the same expected count in every grid cell.

    Equal spots per cell means world-space density proportional to inverse
    cell area — the [4] correction that keeps texture granularity constant
    in *data* space on stretched grids.  Cells are drawn uniformly and the
    position jittered within the *actual* (possibly non-uniform) cell
    rectangle.
    """
    if n < 0:
        raise SpotError(f"cannot draw {n} positions")
    rng = as_rng(seed)
    x = np.asarray(grid.x_coords(), dtype=np.float64)
    y = np.asarray(grid.y_coords(), dtype=np.float64)
    ncx, ncy = x.size - 1, y.size - 1
    choice = rng.integers(0, ncx * ncy, size=n)
    iy, ix = np.divmod(choice, ncx)
    out = np.empty((n, 2), dtype=np.float64)
    out[:, 0] = x[ix] + rng.uniform(0.0, 1.0, size=n) * (x[ix + 1] - x[ix])
    out[:, 1] = y[iy] + rng.uniform(0.0, 1.0, size=n) * (y[iy + 1] - y[iy])
    return out


def seed_positions(n: int, grid, strategy: str = "uniform", seed=None) -> np.ndarray:
    """Draw spot positions on a grid with the named strategy.

    ``"uniform"`` and ``"jittered"`` sample the world rectangle;
    ``"cell_area"`` applies the non-uniform-grid correction of [4]
    (equal expected spot count per grid cell).
    """
    if strategy == "uniform":
        return uniform_positions(n, grid.bounds, seed)
    if strategy == "jittered":
        return jittered_grid_positions(n, grid.bounds, seed)
    if strategy == "cell_area":
        return cell_uniform_positions(n, grid, seed)
    raise SpotError(f"unknown seeding strategy {strategy!r}")


def signed_intensities(n: int, amplitude: float = 1.0, seed=None) -> np.ndarray:
    """Zero-mean two-point intensities: each spot gets ±amplitude."""
    if n < 0:
        raise SpotError(f"cannot draw {n} intensities")
    if amplitude < 0:
        raise SpotError(f"amplitude must be >= 0, got {amplitude}")
    rng = as_rng(seed)
    return amplitude * rng.choice(np.array([-1.0, 1.0]), size=n)


def gaussian_intensities(n: int, sigma: float = 1.0, seed=None) -> np.ndarray:
    """Zero-mean Gaussian intensities (an alternative ``a_i`` distribution)."""
    if n < 0:
        raise SpotError(f"cannot draw {n} intensities")
    if sigma < 0:
        raise SpotError(f"sigma must be >= 0, got {sigma}")
    rng = as_rng(seed)
    return rng.normal(0.0, sigma, size=n) if sigma > 0 else np.zeros(n)
