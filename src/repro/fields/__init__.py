"""Vector/scalar fields on regular and rectilinear grids.

This subpackage is the data substrate of the spot noise pipeline: the
"read data set" stage of figure 3 produces the objects defined here.  Both
applications of the paper are covered — the smog model's regular 53x55
grid and the DNS application's rectilinear 278x208 grid — plus analytic
fields used for testing and for the figure-2 separation study.
"""

from repro.fields.grid import RegularGrid, RectilinearGrid
from repro.fields.vectorfield import VectorField2D
from repro.fields.scalarfield import ScalarField2D
from repro.fields.analytic import (
    constant_field,
    shear_field,
    vortex_field,
    saddle_field,
    separation_field,
    double_gyre_field,
    taylor_green_field,
    random_smooth_field,
)
from repro.fields.derived import (
    magnitude_field,
    vorticity_field,
    divergence_field,
    okubo_weiss_field,
)
from repro.fields.slices import Dataset3D, SliceSpec
from repro.fields.timeseries import TimeInterpolatedField
from repro.fields import io

__all__ = [
    "RegularGrid",
    "RectilinearGrid",
    "VectorField2D",
    "ScalarField2D",
    "constant_field",
    "shear_field",
    "vortex_field",
    "saddle_field",
    "separation_field",
    "double_gyre_field",
    "taylor_green_field",
    "random_smooth_field",
    "magnitude_field",
    "vorticity_field",
    "divergence_field",
    "okubo_weiss_field",
    "Dataset3D",
    "SliceSpec",
    "TimeInterpolatedField",
    "io",
]
