"""Vectorised bilinear sampling of gridded data.

Everything in the pipeline that touches a field — particle advection,
spot transforms, bent-spot streamline integration — funnels through
:func:`bilinear_sample`.  It is written to take *all* query points at
once (fractional indices from the grid) and uses pure numpy gathers so a
single call amortises over tens of thousands of particles, per the
vectorise-your-inner-loop rule for numerical Python.
"""

from __future__ import annotations

from typing import Literal, Tuple

import numpy as np

from repro.errors import FieldError

BoundaryMode = Literal["clamp", "wrap", "zero"]

_BOUNDARY_MODES = ("clamp", "wrap", "zero")


def _prepare_indices(
    f: np.ndarray, n: int, mode: BoundaryMode, need_inside: bool = True
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, "np.ndarray | None"]:
    """Split fractional indices into (i0, i1, weight, inside-mask).

    ``i0``/``i1`` are valid array indices for the chosen boundary mode, ``t``
    is the interpolation weight toward ``i1`` and ``inside`` flags samples
    whose original coordinate was within the index range ``[0, n-1]``.
    The inside mask is only consumed by the ``"zero"`` boundary mode;
    callers on the hot path skip it with ``need_inside=False`` (``None``
    is returned in its place).
    """
    f = np.asarray(f, dtype=np.float64)
    finite = np.isfinite(f)
    if not finite.all():
        # Non-finite queries (corrupted particle state) sample the origin
        # texel and are flagged as outside; they must not poison the cast.
        f = np.where(finite, f, 0.0)
    inside = ((f >= 0.0) & (f <= n - 1) & finite) if need_inside else None
    if mode == "wrap":
        f = np.mod(f, n - 1)
    else:
        f = np.clip(f, 0.0, n - 1)
    i0 = np.floor(f).astype(np.int64)
    np.clip(i0, 0, n - 2, out=i0)
    t = f - i0
    return i0, i0 + 1, t, inside


def bilinear_sample(
    data: np.ndarray,
    fx: np.ndarray,
    fy: np.ndarray,
    mode: BoundaryMode = "clamp",
) -> np.ndarray:
    """Bilinearly interpolate *data* at fractional indices ``(fx, fy)``.

    Parameters
    ----------
    data:
        ``(ny, nx)`` scalar array or ``(ny, nx, k)`` array of k-vectors.
    fx, fy:
        Fractional index arrays of identical shape ``(N,)`` (``fx`` along
        the second axis of *data*).
    mode:
        Boundary policy for out-of-range samples: ``"clamp"`` extends edge
        values, ``"wrap"`` is periodic, ``"zero"`` returns zeros outside.

    Returns
    -------
    ``(N,)`` or ``(N, k)`` array of interpolated values.
    """
    if mode not in _BOUNDARY_MODES:
        raise FieldError(f"unknown boundary mode {mode!r}; expected one of {_BOUNDARY_MODES}")
    data = np.asarray(data)
    if data.ndim not in (2, 3):
        raise FieldError(f"data must be (ny, nx) or (ny, nx, k), got shape {data.shape}")
    fx = np.asarray(fx, dtype=np.float64)
    fy = np.asarray(fy, dtype=np.float64)
    if fx.shape != fy.shape:
        raise FieldError(f"fx and fy must have the same shape, got {fx.shape} vs {fy.shape}")

    ny, nx = data.shape[:2]
    if nx < 2 or ny < 2:
        raise FieldError("data must span at least 2 nodes per axis")

    need_inside = mode == "zero"
    jx0, jx1, tx, in_x = _prepare_indices(fx, nx, mode, need_inside)
    jy0, jy1, ty, in_y = _prepare_indices(fy, ny, mode, need_inside)

    if data.ndim == 3:
        tx = tx[..., None]
        ty = ty[..., None]

    v00 = data[jy0, jx0]
    v01 = data[jy0, jx1]
    v10 = data[jy1, jx0]
    v11 = data[jy1, jx1]

    top = v00 * (1.0 - tx) + v01 * tx
    bot = v10 * (1.0 - tx) + v11 * tx
    out = top * (1.0 - ty) + bot * ty

    if mode == "zero":
        outside = ~(in_x & in_y)
        if data.ndim == 3:
            out = np.where(outside[..., None], 0.0, out)
        else:
            out = np.where(outside, 0.0, out)
    return out


def nearest_sample(
    data: np.ndarray,
    fx: np.ndarray,
    fy: np.ndarray,
    mode: BoundaryMode = "clamp",
) -> np.ndarray:
    """Nearest-neighbour sampling (used for the geography/land-mask overlay)."""
    if mode not in _BOUNDARY_MODES:
        raise FieldError(f"unknown boundary mode {mode!r}; expected one of {_BOUNDARY_MODES}")
    data = np.asarray(data)
    if data.ndim not in (2, 3):
        raise FieldError(f"data must be (ny, nx) or (ny, nx, k), got shape {data.shape}")
    fx = np.asarray(fx, dtype=np.float64)
    fy = np.asarray(fy, dtype=np.float64)
    ny, nx = data.shape[:2]

    def idx(f: np.ndarray, n: int) -> Tuple[np.ndarray, np.ndarray]:
        inside = (f >= -0.5) & (f <= n - 0.5)
        if mode == "wrap":
            f = np.mod(f, n)
        i = np.clip(np.rint(f).astype(np.int64), 0, n - 1)
        return i, inside

    ix, in_x = idx(fx, nx)
    iy, in_y = idx(fy, ny)
    out = data[iy, ix]
    if mode == "zero":
        outside = ~(in_x & in_y)
        if data.ndim == 3:
            out = np.where(outside[..., None], 0, out)
        else:
            out = np.where(outside, 0, out)
    return out
