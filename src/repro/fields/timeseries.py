"""Time-interpolated field sequences.

The DNS database stores slices at discrete solver times, but smooth
animation (and pathline integration through stored data) wants the field
at *arbitrary* times.  :class:`TimeInterpolatedField` provides linear
interpolation in time over any indexed frame source — the standard
treatment for browsing simulation output at display rates different from
the storage rate.
"""

from __future__ import annotations

import bisect
from typing import Callable, Sequence

import numpy as np

from repro.errors import FieldError
from repro.fields.vectorfield import VectorField2D

FrameReader = Callable[[int], VectorField2D]


class TimeInterpolatedField:
    """Linear-in-time interpolation over stored frames.

    Parameters
    ----------
    reader:
        ``reader(i) -> VectorField2D`` returning stored frame *i* (e.g.
        ``store.read``).
    times:
        Strictly increasing frame times.

    A two-frame cache makes sequential playback load each frame once.
    """

    def __init__(self, reader: FrameReader, times: Sequence[float]):
        self.times = [float(t) for t in times]
        if len(self.times) < 2:
            raise FieldError("need at least 2 frames to interpolate in time")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise FieldError("frame times must be strictly increasing")
        self.reader = reader
        self._cache: "dict[int, VectorField2D]" = {}

    @classmethod
    def from_store(cls, store) -> "TimeInterpolatedField":
        """Wrap a :class:`~repro.apps.dns.store.ChunkedFieldStore`."""
        return cls(store.read, store.times)

    @property
    def t_min(self) -> float:
        return self.times[0]

    @property
    def t_max(self) -> float:
        return self.times[-1]

    def _frame(self, i: int) -> VectorField2D:
        if i not in self._cache:
            if len(self._cache) >= 2:
                # Keep the most recent frame only; playback is local.
                oldest = min(self._cache)
                del self._cache[oldest]
            self._cache[i] = self.reader(i)
        return self._cache[i]

    def field_at(self, t: float) -> VectorField2D:
        """The interpolated field at time *t* (clamped to the stored range)."""
        t = float(np.clip(t, self.t_min, self.t_max))
        hi = bisect.bisect_right(self.times, t)
        hi = min(max(hi, 1), len(self.times) - 1)
        lo = hi - 1
        t0, t1 = self.times[lo], self.times[hi]
        w = (t - t0) / (t1 - t0)
        a = self._frame(lo)
        if w == 0.0:
            return VectorField2D(a.grid, a.data.copy(), a.boundary)
        b = self._frame(hi)
        return VectorField2D(a.grid, (1.0 - w) * a.data + w * b.data, a.boundary)

    def sampler(self):
        """``(positions, t) -> velocities`` for the unsteady integrators.

        Bridges stored data to :mod:`repro.advection.unsteady`, enabling
        pathlines and streaklines *through the database*.
        """

        def sample(positions: np.ndarray, t: float) -> np.ndarray:
            return self.field_at(t).sample(positions)

        return sample
