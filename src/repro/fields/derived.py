"""Derived scalar diagnostics of a vector field.

The DNS application (section 5.2) relates the visualised flow to "other
physical phenomena, such as pressure or helicity"; these functions compute
the standard 2-D diagnostics used for that purpose so the browser can
overlay them, exactly as figure 6 overlays O3 on the wind field.
"""

from __future__ import annotations

import numpy as np

from repro.fields.vectorfield import VectorField2D
from repro.fields.scalarfield import ScalarField2D


def _axis_spacings(field: VectorField2D) -> "tuple[np.ndarray, np.ndarray]":
    """Per-axis coordinate arrays for gradient computation on either grid type."""
    return field.grid.x_coords(), field.grid.y_coords()


def magnitude_field(field: VectorField2D) -> ScalarField2D:
    """Speed ``|v|`` as a scalar field."""
    return ScalarField2D(field.grid, np.hypot(field.u, field.v))


def vorticity_field(field: VectorField2D) -> ScalarField2D:
    """Scalar (out-of-plane) vorticity ``dv/dx - du/dy``.

    Central differences on the (possibly non-uniform) node coordinates; this
    is the quantity that makes the vortex street of figure 7 visible.
    """
    x, y = _axis_spacings(field)
    dvdx = np.gradient(field.v, x, axis=1)
    dudy = np.gradient(field.u, y, axis=0)
    return ScalarField2D(field.grid, dvdx - dudy)


def divergence_field(field: VectorField2D) -> ScalarField2D:
    """Divergence ``du/dx + dv/dy`` (≈0 for incompressible DNS slices)."""
    x, y = _axis_spacings(field)
    dudx = np.gradient(field.u, x, axis=1)
    dvdy = np.gradient(field.v, y, axis=0)
    return ScalarField2D(field.grid, dudx + dvdy)


def okubo_weiss_field(field: VectorField2D) -> ScalarField2D:
    """Okubo–Weiss criterion ``s_n^2 + s_s^2 - w^2``.

    Negative values flag vortex cores, positive values strain-dominated
    regions — the 2-D analogue of the pressure/helicity criteria the DNS
    study correlates with the vortex shedding.
    """
    x, y = _axis_spacings(field)
    dudx = np.gradient(field.u, x, axis=1)
    dudy = np.gradient(field.u, y, axis=0)
    dvdx = np.gradient(field.v, x, axis=1)
    dvdy = np.gradient(field.v, y, axis=0)
    normal_strain = dudx - dvdy
    shear_strain = dvdx + dudy
    vorticity = dvdx - dudy
    return ScalarField2D(field.grid, normal_strain**2 + shear_strain**2 - vorticity**2)
