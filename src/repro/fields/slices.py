"""3-D data sets and 2-D slicing.

Both applications of the paper visualise "a slice from the three
dimensional data set".  :class:`Dataset3D` holds a (possibly large)
``(nz, ny, nx, 3)`` vector volume and :class:`SliceSpec` selects an axis-
aligned plane, producing the in-plane 2-D vector field the spot noise
pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Tuple

import numpy as np

from repro.errors import FieldError
from repro.fields.grid import RegularGrid
from repro.fields.vectorfield import VectorField2D

Axis = Literal["x", "y", "z"]

# For each slicing axis: (index axis in the volume, the two in-plane
# component indices of the 3-vector, the two in-plane coordinate axes).
_AXIS_INFO = {
    "z": (0, (0, 1), ("x", "y")),
    "y": (1, (0, 2), ("x", "z")),
    "x": (2, (1, 2), ("y", "z")),
}


@dataclass(frozen=True)
class SliceSpec:
    """An axis-aligned slice: the plane ``axis = index`` of the volume."""

    axis: Axis
    index: int

    def __post_init__(self) -> None:
        if self.axis not in _AXIS_INFO:
            raise FieldError(f"slice axis must be one of 'x','y','z', got {self.axis!r}")
        if self.index < 0:
            raise FieldError(f"slice index must be >= 0, got {self.index}")


class Dataset3D:
    """A 3-D vector data set on a regular lattice.

    Parameters
    ----------
    data:
        ``(nz, ny, nx, 3)`` array of ``(u, v, w)`` vectors.
    bounds:
        ``(x0, x1, y0, y1, z0, z1)`` world extent.
    """

    def __init__(self, data: np.ndarray, bounds: Tuple[float, ...] = (0.0, 1.0, 0.0, 1.0, 0.0, 1.0)):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 4 or data.shape[3] != 3:
            raise FieldError(f"volume must have shape (nz, ny, nx, 3), got {data.shape}")
        if any(s < 2 for s in data.shape[:3]):
            raise FieldError("volume needs at least 2 nodes per axis")
        if len(bounds) != 6:
            raise FieldError(f"bounds must be (x0,x1,y0,y1,z0,z1), got {bounds}")
        self.data = data
        self.bounds = tuple(float(b) for b in bounds)
        self.nz, self.ny, self.nx = data.shape[:3]

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.nz, self.ny, self.nx)

    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def axis_size(self, axis: Axis) -> int:
        return {"z": self.nz, "y": self.ny, "x": self.nx}[axis]

    def _plane_bounds(self, axes: Tuple[str, str]) -> Tuple[float, float, float, float]:
        x0, x1, y0, y1, z0, z1 = self.bounds
        per_axis = {"x": (x0, x1), "y": (y0, y1), "z": (z0, z1)}
        (a0, a1), (b0, b1) = per_axis[axes[0]], per_axis[axes[1]]
        return (a0, a1, b0, b1)

    def slice(self, spec: SliceSpec) -> VectorField2D:
        """Extract the in-plane 2-D vector field of an axis-aligned slice.

        The out-of-plane velocity component is dropped: spot noise is a 2-D
        texture technique and visualises the in-plane flow, exactly as the
        paper does for its slices.
        """
        idx_axis, comp, plane_axes = _AXIS_INFO[spec.axis]
        size = self.axis_size(spec.axis)
        if spec.index >= size:
            raise FieldError(f"slice index {spec.index} out of range for axis {spec.axis} (size {size})")
        plane = np.take(self.data, spec.index, axis=idx_axis)
        in_plane = plane[..., list(comp)]
        ny, nx = in_plane.shape[:2]
        grid = RegularGrid(nx, ny, self._plane_bounds(plane_axes))
        return VectorField2D(grid, in_plane)

    @classmethod
    def from_function(
        cls,
        fn,
        shape: Tuple[int, int, int],
        bounds: Tuple[float, ...] = (0.0, 1.0, 0.0, 1.0, 0.0, 1.0),
    ) -> "Dataset3D":
        """Sample ``fn(X, Y, Z) -> (U, V, W)`` onto a regular lattice."""
        nz, ny, nx = shape
        x0, x1, y0, y1, z0, z1 = bounds
        xs = np.linspace(x0, x1, nx)
        ys = np.linspace(y0, y1, ny)
        zs = np.linspace(z0, z1, nz)
        Z, Y, X = np.meshgrid(zs, ys, xs, indexing="ij")
        u, v, w = fn(X, Y, Z)
        data = np.stack(
            [np.broadcast_to(u, X.shape), np.broadcast_to(v, X.shape), np.broadcast_to(w, X.shape)],
            axis=-1,
        )
        return cls(data.astype(np.float64), bounds)
