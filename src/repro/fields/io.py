"""Field persistence.

A tiny, dependency-free ``.npz`` container for fields.  The DNS browser
stores thousands of time slices through :mod:`repro.apps.dns.store`,
which builds on these primitives.
"""

from __future__ import annotations

import hashlib
import os
from typing import Union

import numpy as np

from repro.errors import FieldError
from repro.fields.grid import RegularGrid, RectilinearGrid
from repro.fields.vectorfield import VectorField2D
from repro.fields.scalarfield import ScalarField2D
from repro.utils.fileio import atomic_write

_FORMAT_VERSION = 1


def save_field(path: Union[str, os.PathLike], field: Union[VectorField2D, ScalarField2D]) -> None:
    """Serialise a field (grid + data) to an ``.npz`` file.

    The write is atomic (temp file + ``os.replace``): a crash mid-save
    leaves any existing file untouched instead of a truncated archive.
    """
    grid = field.grid
    # np.savez appends ".npz" to bare path names but not to handles;
    # resolve the final name up front so atomic_write replaces the same
    # path numpy would have written.
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    meta = {
        "format_version": _FORMAT_VERSION,
        "kind": "vector" if isinstance(field, VectorField2D) else "scalar",
        "boundary": field.boundary,
    }
    if isinstance(grid, RegularGrid):
        payload = dict(
            data=field.data,
            grid_type="regular",
            nx=grid.nx,
            ny=grid.ny,
            bounds=np.asarray(grid.bounds),
        )
    elif isinstance(grid, RectilinearGrid):
        payload = dict(
            data=field.data,
            grid_type="rectilinear",
            x=grid.x,
            y=grid.y,
        )
    else:  # pragma: no cover - defensive
        raise FieldError(f"unsupported grid type {type(grid).__name__}")
    payload.update({k: np.asarray(v) for k, v in meta.items()})
    atomic_write(path, lambda fh: np.savez_compressed(fh, **payload))


def load_field(path: Union[str, os.PathLike]) -> Union[VectorField2D, ScalarField2D]:
    """Load a field saved by :func:`save_field`."""
    with np.load(path, allow_pickle=False) as archive:
        try:
            version = int(archive["format_version"])
            kind = str(archive["kind"])
            boundary = str(archive["boundary"])
            grid_type = str(archive["grid_type"])
            data = archive["data"]
            if grid_type == "regular":
                bounds = tuple(float(b) for b in archive["bounds"])
                grid: Union[RegularGrid, RectilinearGrid] = RegularGrid(
                    int(archive["nx"]), int(archive["ny"]), bounds
                )
            elif grid_type == "rectilinear":
                grid = RectilinearGrid(archive["x"], archive["y"])
            else:
                raise FieldError(f"unknown grid type {grid_type!r} in {path}")
        except KeyError as exc:
            raise FieldError(f"{path} is not a repro field file (missing {exc})") from exc
    if version > _FORMAT_VERSION:
        raise FieldError(
            f"{path} uses field format version {version}, newer than the "
            f"latest supported version {_FORMAT_VERSION}; upgrade repro to read it"
        )
    if version < 1:
        raise FieldError(f"invalid field format version {version} in {path}")
    if kind == "vector":
        return VectorField2D(grid, data, boundary)  # type: ignore[arg-type]
    if kind == "scalar":
        return ScalarField2D(grid, data, boundary)  # type: ignore[arg-type]
    raise FieldError(f"unknown field kind {kind!r} in {path}")


def field_digest(field: Union[VectorField2D, ScalarField2D]) -> str:
    """Stable SHA-256 content digest of a field (grid + data + boundary).

    Two fields digest equal iff they would sample identically: same kind,
    same grid geometry, same boundary mode and bit-identical data.  The
    serving layer (:mod:`repro.service`) uses this as the data half of its
    content-addressed request keys, so the digest must not depend on
    incidental array properties (dtype width, memory layout) — data is
    canonicalised to C-ordered float64 before hashing.
    """
    h = hashlib.sha256()
    kind = "vector" if isinstance(field, VectorField2D) else "scalar"
    h.update(kind.encode("ascii") + b"\x00")
    h.update(str(field.boundary).encode("ascii") + b"\x00")
    grid = field.grid
    if isinstance(grid, RegularGrid):
        h.update(b"regular\x00")
        h.update(np.asarray([grid.nx, grid.ny], dtype=np.int64).tobytes())
        h.update(np.asarray(grid.bounds, dtype=np.float64).tobytes())
    elif isinstance(grid, RectilinearGrid):
        h.update(b"rectilinear\x00")
        h.update(np.ascontiguousarray(grid.x, dtype=np.float64).tobytes())
        h.update(np.ascontiguousarray(grid.y, dtype=np.float64).tobytes())
    else:  # pragma: no cover - defensive
        raise FieldError(f"unsupported grid type {type(grid).__name__}")
    h.update(np.ascontiguousarray(field.data, dtype=np.float64).tobytes())
    return h.hexdigest()
