"""Analytic test fields.

These provide ground truth for the unit tests (advection in a constant
field must be exactly linear, a vortex field must conserve radius under
accurate integration, ...) and the separation-line flow used to
reproduce figure 2 of the paper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.fields.grid import RegularGrid
from repro.fields.vectorfield import VectorField2D
from repro.utils.rng import as_rng


def _default_grid(n: int = 64, bounds: Tuple[float, float, float, float] = (-1.0, 1.0, -1.0, 1.0)) -> RegularGrid:
    return RegularGrid(n, n, bounds)


def constant_field(u: float = 1.0, v: float = 0.0, n: int = 64, bounds=(-1.0, 1.0, -1.0, 1.0)) -> VectorField2D:
    """Uniform flow ``(u, v)`` everywhere."""
    grid = _default_grid(n, bounds)
    return VectorField2D.from_function(grid, lambda X, Y: (np.full_like(X, u), np.full_like(Y, v)))


def shear_field(rate: float = 1.0, n: int = 64, bounds=(-1.0, 1.0, -1.0, 1.0)) -> VectorField2D:
    """Horizontal shear ``u = rate * y, v = 0`` — anisotropy for spot stretching."""
    grid = _default_grid(n, bounds)
    return VectorField2D.from_function(grid, lambda X, Y: (rate * Y, np.zeros_like(X)))


def vortex_field(omega: float = 1.0, n: int = 64, bounds=(-1.0, 1.0, -1.0, 1.0)) -> VectorField2D:
    """Solid-body rotation about the origin with angular velocity *omega*.

    Streamlines are circles; accurate integrators must preserve radius.
    """
    grid = _default_grid(n, bounds)
    return VectorField2D.from_function(grid, lambda X, Y: (-omega * Y, omega * X))


def saddle_field(rate: float = 1.0, n: int = 64, bounds=(-1.0, 1.0, -1.0, 1.0)) -> VectorField2D:
    """Hyperbolic stagnation flow ``u = rate*x, v = -rate*y``."""
    grid = _default_grid(n, bounds)
    return VectorField2D.from_function(grid, lambda X, Y: (rate * X, -rate * Y))


def separation_field(
    line_y: float = 0.0,
    strength: float = 1.0,
    along: float = 0.6,
    n: int = 96,
    bounds=(-1.0, 1.0, -1.0, 1.0),
) -> VectorField2D:
    """Skin-friction-like field with a separation line at ``y = line_y``.

    Figure 2 of the paper studies where a wind field impinging on a block
    separates (flow passing over vs under).  The canonical local model of a
    separation line on a surface is flow converging onto a line from both
    sides while accelerating along it:

        u = along * strength
        v = -strength * (y - line_y)

    Above the line fluid moves down toward it, below moves up; the line
    itself is an attractor — exactly the structure spot advection makes
    visible in the lower image of figure 2.
    """
    grid = _default_grid(n, bounds)

    def fn(X, Y):
        u = np.full_like(X, along * strength)
        v = -strength * (Y - line_y)
        return u, v

    return VectorField2D.from_function(grid, fn)


def double_gyre_field(
    t: float = 0.0,
    A: float = 0.1,
    eps: float = 0.25,
    omega: float = 0.628,
    n: int = 96,
) -> VectorField2D:
    """The classic time-dependent double gyre on ``[0,2] x [0,1]``.

    A standard benchmark for unsteady flow visualisation; used by the
    animation tests to exercise time-varying input fields.
    """
    grid = RegularGrid(2 * n, n, (0.0, 2.0, 0.0, 1.0))

    def fn(X, Y):
        a = eps * np.sin(omega * t)
        b = 1.0 - 2.0 * a
        f = a * X**2 + b * X
        dfdx = 2.0 * a * X + b
        u = -np.pi * A * np.sin(np.pi * f) * np.cos(np.pi * Y)
        v = np.pi * A * np.cos(np.pi * f) * np.sin(np.pi * Y) * dfdx
        return u, v

    return VectorField2D.from_function(grid, fn)


def taylor_green_field(k: int = 2, amplitude: float = 1.0, n: int = 96) -> VectorField2D:
    """Taylor–Green vortex lattice on ``[0,1]^2`` (periodic, divergence free)."""
    grid = RegularGrid(n, n, (0.0, 1.0, 0.0, 1.0))
    kk = 2.0 * np.pi * k

    def fn(X, Y):
        u = amplitude * np.sin(kk * X) * np.cos(kk * Y)
        v = -amplitude * np.cos(kk * X) * np.sin(kk * Y)
        return u, v

    f = VectorField2D.from_function(grid, fn)
    f.boundary = "wrap"
    return f


def random_smooth_field(
    seed=None,
    n: int = 64,
    smoothness: float = 8.0,
    amplitude: float = 1.0,
    bounds=(-1.0, 1.0, -1.0, 1.0),
) -> VectorField2D:
    """Band-limited random field: white noise low-pass filtered in Fourier space.

    Gives irregular but smooth flows for fuzz/property tests without needing
    the DNS solver.
    """
    rng = as_rng(seed)
    grid = _default_grid(n, bounds)

    def smooth_noise() -> np.ndarray:
        white = rng.standard_normal(grid.shape)
        spec = np.fft.rfft2(white)
        ky = np.fft.fftfreq(grid.shape[0])[:, None]
        kx = np.fft.rfftfreq(grid.shape[1])[None, :]
        k2 = kx**2 + ky**2
        spec *= np.exp(-smoothness**2 * k2 * (2.0 * np.pi) ** 2 / 2.0)
        out = np.fft.irfft2(spec, s=grid.shape)
        peak = np.abs(out).max()
        return out / peak if peak > 0 else out

    u = amplitude * smooth_noise()
    v = amplitude * smooth_noise()
    return VectorField2D.from_components(grid, u, v)
