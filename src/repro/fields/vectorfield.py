"""2-D vector fields over structured grids."""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.errors import FieldError
from repro.fields.grid import RegularGrid, RectilinearGrid, _as_points
from repro.fields.sampling import bilinear_sample, BoundaryMode

Grid = Union[RegularGrid, RectilinearGrid]


class VectorField2D:
    """A sampled 2-D vector field ``(u, v)`` on a structured grid.

    Parameters
    ----------
    grid:
        :class:`RegularGrid` or :class:`RectilinearGrid`.
    data:
        ``(ny, nx, 2)`` array; ``data[..., 0]`` is the x-component ``u`` and
        ``data[..., 1]`` the y-component ``v``.
    boundary:
        Default boundary mode used by :meth:`sample`.

    The field object is the unit of exchange between simulation and
    visualisation: the smog model and the DNS solver both emit one of these
    per animation frame (pipeline step 1 of figure 3).
    """

    def __init__(self, grid: Grid, data: np.ndarray, boundary: BoundaryMode = "clamp"):
        data = np.asarray(data, dtype=np.float64)
        if data.shape != (*grid.shape, 2):
            raise FieldError(
                f"vector data must have shape {(*grid.shape, 2)} for this grid, got {data.shape}"
            )
        if not np.all(np.isfinite(data)):
            raise FieldError("vector data contains non-finite values")
        self.grid = grid
        self.data = data
        self.boundary: BoundaryMode = boundary

    # -- construction helpers ----------------------------------------------
    @classmethod
    def from_function(
        cls,
        grid: Grid,
        fn: Callable[[np.ndarray, np.ndarray], "tuple[np.ndarray, np.ndarray]"],
        boundary: BoundaryMode = "clamp",
    ) -> "VectorField2D":
        """Sample an analytic function ``fn(X, Y) -> (U, V)`` onto *grid*."""
        X, Y = grid.mesh()
        u, v = fn(X, Y)
        data = np.stack([np.broadcast_to(u, X.shape), np.broadcast_to(v, X.shape)], axis=-1)
        return cls(grid, data.astype(np.float64), boundary)

    @classmethod
    def from_components(
        cls, grid: Grid, u: np.ndarray, v: np.ndarray, boundary: BoundaryMode = "clamp"
    ) -> "VectorField2D":
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        if u.shape != grid.shape or v.shape != grid.shape:
            raise FieldError(
                f"components must have grid shape {grid.shape}, got {u.shape} and {v.shape}"
            )
        return cls(grid, np.stack([u, v], axis=-1), boundary)

    # -- components ----------------------------------------------------------
    @property
    def u(self) -> np.ndarray:
        """x-component array, shape ``(ny, nx)`` (a view, not a copy)."""
        return self.data[..., 0]

    @property
    def v(self) -> np.ndarray:
        """y-component array, shape ``(ny, nx)`` (a view, not a copy)."""
        return self.data[..., 1]

    # -- sampling ------------------------------------------------------------
    def sample(self, points: np.ndarray, boundary: Optional[BoundaryMode] = None) -> np.ndarray:
        """Bilinearly sample the field at world *points* ``(N, 2) -> (N, 2)``."""
        pts = _as_points(points)
        fx, fy = self.grid.world_to_fractional(pts)
        return bilinear_sample(self.data, fx, fy, boundary or self.boundary)

    def sampler(self) -> Callable[[np.ndarray], np.ndarray]:
        """A sampling closure for hot loops, numerically identical to
        :meth:`sample`.

        Streamline integration calls the sampler dozens of times per
        frame; this closure hoists the per-call validation and boundary
        dispatch out of that loop while performing the *same arithmetic
        in the same order* as :meth:`sample`, so integrators may use
        either interchangeably without changing a single bit of output.
        Anything unusual — non-(N, 2) input, non-finite coordinates, a
        rectilinear grid, a non-clamp boundary — falls back to
        :meth:`sample` itself.
        """
        grid = self.grid
        if not isinstance(grid, RegularGrid) or self.boundary != "clamp":
            return self.sample
        data = self.data
        ny, nx = data.shape[:2]
        if nx < 2 or ny < 2:  # pragma: no cover - rejected by grid validation
            return self.sample
        origin = np.array([grid.x0, grid.y0])
        spacing = np.array([grid.dx, grid.dy])
        hi = np.array([nx - 1.0, ny - 1.0])
        hi_cell = np.array([nx - 2, ny - 2], dtype=np.int64)

        def fast_sample(points: np.ndarray) -> np.ndarray:
            pts = np.asarray(points, dtype=np.float64)
            if pts.ndim != 2 or pts.shape[1] != 2:
                return self.sample(points)
            # Same element-wise operations as world_to_fractional +
            # bilinear_sample's clamp path, fused over both columns
            # (validated finite, so the NaN-rescue pass of
            # _prepare_indices is the identity there).
            f = (pts - origin) / spacing
            if not np.isfinite(f).all():
                return self.sample(points)
            f = np.minimum(np.maximum(f, 0.0), hi)
            # Truncation equals floor for the clamped (non-negative) range.
            j0 = np.minimum(f.astype(np.int64), hi_cell)
            t = f - j0
            tx = t[:, 0][:, None]
            ty = t[:, 1][:, None]
            jx0 = j0[:, 0]
            jy0 = j0[:, 1]
            jx1 = jx0 + 1
            jy1 = jy0 + 1
            v00 = data[jy0, jx0]
            v01 = data[jy0, jx1]
            v10 = data[jy1, jx0]
            v11 = data[jy1, jx1]
            top = v00 * (1.0 - tx) + v01 * tx
            bot = v10 * (1.0 - tx) + v11 * tx
            return top * (1.0 - ty) + bot * ty

        return fast_sample

    def magnitude_at(self, points: np.ndarray) -> np.ndarray:
        """Speed ``|v|`` at world points, shape ``(N,)``."""
        vec = self.sample(points)
        return np.hypot(vec[:, 0], vec[:, 1])

    def direction_at(self, points: np.ndarray) -> np.ndarray:
        """Flow angle ``atan2(v, u)`` in radians at world points."""
        vec = self.sample(points)
        return np.arctan2(vec[:, 1], vec[:, 0])

    # -- statistics ----------------------------------------------------------
    def max_magnitude(self) -> float:
        """Maximum node speed; used to scale advection steps and spot sizes."""
        return float(np.hypot(self.u, self.v).max())

    def mean_magnitude(self) -> float:
        return float(np.hypot(self.u, self.v).mean())

    # -- algebra -------------------------------------------------------------
    def scaled(self, factor: float) -> "VectorField2D":
        """A new field with all vectors multiplied by *factor*."""
        return VectorField2D(self.grid, self.data * float(factor), self.boundary)

    def plus(self, other: "VectorField2D") -> "VectorField2D":
        """Node-wise sum of two fields on the identical grid."""
        if other.grid.shape != self.grid.shape or other.grid.bounds != self.grid.bounds:
            raise FieldError("cannot add fields on different grids")
        return VectorField2D(self.grid, self.data + other.data, self.boundary)

    def nbytes(self) -> int:
        """Size of the raw field data in bytes (data-set read-rate budgeting)."""
        return int(self.data.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VectorField2D(shape={self.grid.shape}, bounds={self.grid.bounds}, "
            f"max|v|={self.max_magnitude():.3g})"
        )
