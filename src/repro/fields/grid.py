"""2-D structured grids.

Two grid types are provided, matching the two applications in the paper:

* :class:`RegularGrid` — uniform spacing (the 53x55 atmospheric grid);
* :class:`RectilinearGrid` — per-axis monotone coordinate arrays (the
  278x208 DNS grid, which clusters cells near the block).

Conventions
-----------
Field data arrays are indexed ``[iy, ix]`` (row = y, column = x) so that
``data.shape == (ny, nx)``.  World coordinates are ``(x, y)`` pairs with x
increasing along columns and y along rows.  Point arrays are ``(N, 2)``
float arrays of world coordinates.

The central operation is :meth:`world_to_fractional`, which converts world
points into fractional grid indices ``(fx, fy)`` used by the bilinear
sampler in :mod:`repro.fields.sampling`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GridError


def _as_points(points: np.ndarray) -> np.ndarray:
    """Normalise *points* to an (N, 2) float64 array (accepts a single pair)."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        if pts.shape[0] != 2:
            raise GridError(f"a point must have 2 coordinates, got shape {pts.shape}")
        pts = pts[None, :]
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise GridError(f"points must have shape (N, 2), got {pts.shape}")
    return pts


class RegularGrid:
    """Uniformly spaced 2-D grid over the rectangle ``[x0,x1] x [y0,y1]``.

    Parameters
    ----------
    nx, ny:
        Number of grid *nodes* along x and y (>= 2 each).
    bounds:
        ``(x0, x1, y0, y1)`` world extent of the node lattice.
    """

    def __init__(self, nx: int, ny: int, bounds: Tuple[float, float, float, float] = (0.0, 1.0, 0.0, 1.0)):
        if nx < 2 or ny < 2:
            raise GridError(f"grid needs at least 2 nodes per axis, got nx={nx}, ny={ny}")
        x0, x1, y0, y1 = (float(b) for b in bounds)
        if not (x1 > x0 and y1 > y0):
            raise GridError(f"degenerate bounds {bounds}")
        self.nx = int(nx)
        self.ny = int(ny)
        self.x0, self.x1, self.y0, self.y1 = x0, x1, y0, y1
        self.dx = (x1 - x0) / (nx - 1)
        self.dy = (y1 - y0) / (ny - 1)

    # -- basic geometry ----------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """Data array shape ``(ny, nx)``."""
        return (self.ny, self.nx)

    @property
    def bounds(self) -> Tuple[float, float, float, float]:
        return (self.x0, self.x1, self.y0, self.y1)

    @property
    def extent(self) -> Tuple[float, float]:
        """(width, height) of the domain in world units."""
        return (self.x1 - self.x0, self.y1 - self.y0)

    @property
    def n_cells(self) -> int:
        return (self.nx - 1) * (self.ny - 1)

    def x_coords(self) -> np.ndarray:
        return self.x0 + self.dx * np.arange(self.nx)

    def y_coords(self) -> np.ndarray:
        return self.y0 + self.dy * np.arange(self.ny)

    def mesh(self) -> Tuple[np.ndarray, np.ndarray]:
        """(X, Y) node coordinate arrays of shape ``(ny, nx)``."""
        return np.meshgrid(self.x_coords(), self.y_coords())

    # -- point <-> index mapping -------------------------------------------
    def world_to_fractional(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map world points to fractional indices ``(fx, fy)``.

        ``fx`` in ``[0, nx-1]`` corresponds to ``x`` in ``[x0, x1]``; values
        outside the domain map outside that range (the sampler decides the
        boundary policy).
        """
        pts = _as_points(points)
        fx = (pts[:, 0] - self.x0) / self.dx
        fy = (pts[:, 1] - self.y0) / self.dy
        return fx, fy

    def fractional_to_world(self, fx: np.ndarray, fy: np.ndarray) -> np.ndarray:
        fx = np.asarray(fx, dtype=np.float64)
        fy = np.asarray(fy, dtype=np.float64)
        return np.stack([self.x0 + fx * self.dx, self.y0 + fy * self.dy], axis=-1)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside (inclusive) the grid bounds."""
        pts = _as_points(points)
        return (
            (pts[:, 0] >= self.x0)
            & (pts[:, 0] <= self.x1)
            & (pts[:, 1] >= self.y0)
            & (pts[:, 1] <= self.y1)
        )

    def clamp(self, points: np.ndarray) -> np.ndarray:
        """Clamp points onto the grid bounds (used for 'clamp' boundary mode)."""
        pts = _as_points(points).copy()
        np.clip(pts[:, 0], self.x0, self.x1, out=pts[:, 0])
        np.clip(pts[:, 1], self.y0, self.y1, out=pts[:, 1])
        return pts

    def wrap(self, points: np.ndarray) -> np.ndarray:
        """Wrap points periodically into the grid bounds."""
        pts = _as_points(points).copy()
        w, h = self.extent
        pts[:, 0] = self.x0 + np.mod(pts[:, 0] - self.x0, w)
        pts[:, 1] = self.y0 + np.mod(pts[:, 1] - self.y0, h)
        return pts

    def min_spacing(self) -> float:
        """Smallest node spacing; used to pick advection step sizes."""
        return min(self.dx, self.dy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegularGrid(nx={self.nx}, ny={self.ny}, bounds={self.bounds})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegularGrid):
            return NotImplemented
        return (self.nx, self.ny, self.bounds) == (other.nx, other.ny, other.bounds)

    def __hash__(self) -> int:
        return hash((self.nx, self.ny, self.bounds))


class RectilinearGrid:
    """Tensor-product grid with per-axis monotone node coordinates.

    The DNS data of section 5.2 lives on such a grid: cells are refined near
    the block and stretched far from it.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray):
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 1 or y.ndim != 1:
            raise GridError("coordinate arrays must be 1-D")
        if x.size < 2 or y.size < 2:
            raise GridError("grid needs at least 2 nodes per axis")
        if np.any(np.diff(x) <= 0) or np.any(np.diff(y) <= 0):
            raise GridError("coordinate arrays must be strictly increasing")
        self.x = x
        self.y = y
        self.nx = x.size
        self.ny = y.size

    @classmethod
    def stretched(
        cls,
        nx: int,
        ny: int,
        bounds: Tuple[float, float, float, float],
        focus: Tuple[float, float] = (0.5, 0.5),
        strength: float = 2.0,
    ) -> "RectilinearGrid":
        """Build a grid refined around a focus point.

        *focus* is given in unit coordinates of the domain; *strength* > 1
        concentrates nodes near it using a tanh stretching — the standard way
        DNS meshes cluster resolution around an obstacle.
        """
        if strength <= 0:
            raise GridError("strength must be positive")
        x0, x1, y0, y1 = bounds

        def stretch(n: int, lo: float, hi: float, f: float) -> np.ndarray:
            # Map uniform parameter p in [0,1] through a sinh profile whose
            # derivative is smallest at the focus: x(p) = f + sinh(s(p-p0))/D
            # with p0 (the parameter of the focus) solving
            # sinh(s*p0) / sinh(s*(1-p0)) = f / (1-f), so x(0)=0 and x(1)=1.
            f = float(np.clip(f, 0.0, 1.0))
            s = strength
            if f <= 0.0:
                p0 = 0.0
            elif f >= 1.0:
                p0 = 1.0
            else:
                lo_p, hi_p = 0.0, 1.0
                for _ in range(60):
                    mid = 0.5 * (lo_p + hi_p)
                    ratio = np.sinh(s * mid) / np.sinh(s * (1.0 - mid))
                    if ratio < f / (1.0 - f):
                        lo_p = mid
                    else:
                        hi_p = mid
                p0 = 0.5 * (lo_p + hi_p)
            if p0 <= 0.0:
                D = np.sinh(s) / 1.0
                t = np.sinh(s * np.linspace(0.0, 1.0, n)) / D
            elif p0 >= 1.0:
                D = np.sinh(s)
                t = 1.0 + np.sinh(s * (np.linspace(0.0, 1.0, n) - 1.0)) / D
            else:
                D = np.sinh(s * p0) / f
                t = f + np.sinh(s * (np.linspace(0.0, 1.0, n) - p0)) / D
            t = (t - t[0]) / (t[-1] - t[0])
            return lo + (hi - lo) * t

        return cls(stretch(nx, x0, x1, focus[0]), stretch(ny, y0, y1, focus[1]))

    # -- basic geometry ----------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.ny, self.nx)

    @property
    def bounds(self) -> Tuple[float, float, float, float]:
        return (float(self.x[0]), float(self.x[-1]), float(self.y[0]), float(self.y[-1]))

    @property
    def extent(self) -> Tuple[float, float]:
        x0, x1, y0, y1 = self.bounds
        return (x1 - x0, y1 - y0)

    @property
    def n_cells(self) -> int:
        return (self.nx - 1) * (self.ny - 1)

    def x_coords(self) -> np.ndarray:
        return self.x

    def y_coords(self) -> np.ndarray:
        return self.y

    def mesh(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.meshgrid(self.x, self.y)

    # -- point <-> index mapping -------------------------------------------
    def world_to_fractional(self, points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fractional indices via binary search over the coordinate arrays."""
        pts = _as_points(points)

        def frac(coords: np.ndarray, vals: np.ndarray) -> np.ndarray:
            idx = np.clip(np.searchsorted(coords, vals, side="right") - 1, 0, coords.size - 2)
            lo = coords[idx]
            hi = coords[idx + 1]
            return idx + (vals - lo) / (hi - lo)

        return frac(self.x, pts[:, 0]), frac(self.y, pts[:, 1])

    def fractional_to_world(self, fx: np.ndarray, fy: np.ndarray) -> np.ndarray:
        fx = np.asarray(fx, dtype=np.float64)
        fy = np.asarray(fy, dtype=np.float64)

        def world(coords: np.ndarray, f: np.ndarray) -> np.ndarray:
            idx = np.clip(np.floor(f).astype(np.int64), 0, coords.size - 2)
            t = f - idx
            return coords[idx] * (1.0 - t) + coords[idx + 1] * t

        return np.stack([world(self.x, fx), world(self.y, fy)], axis=-1)

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points)
        x0, x1, y0, y1 = self.bounds
        return (pts[:, 0] >= x0) & (pts[:, 0] <= x1) & (pts[:, 1] >= y0) & (pts[:, 1] <= y1)

    def clamp(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points).copy()
        x0, x1, y0, y1 = self.bounds
        np.clip(pts[:, 0], x0, x1, out=pts[:, 0])
        np.clip(pts[:, 1], y0, y1, out=pts[:, 1])
        return pts

    def wrap(self, points: np.ndarray) -> np.ndarray:
        pts = _as_points(points).copy()
        x0, x1, y0, y1 = self.bounds
        pts[:, 0] = x0 + np.mod(pts[:, 0] - x0, x1 - x0)
        pts[:, 1] = y0 + np.mod(pts[:, 1] - y0, y1 - y0)
        return pts

    def min_spacing(self) -> float:
        return float(min(np.diff(self.x).min(), np.diff(self.y).min()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RectilinearGrid(nx={self.nx}, ny={self.ny}, bounds={self.bounds})"
