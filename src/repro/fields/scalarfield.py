"""2-D scalar fields (pollutant concentration, vorticity, pressure...)."""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.errors import FieldError
from repro.fields.grid import RegularGrid, RectilinearGrid, _as_points
from repro.fields.sampling import bilinear_sample, BoundaryMode

Grid = Union[RegularGrid, RectilinearGrid]


class ScalarField2D:
    """A sampled scalar field on a structured grid.

    Figure 6 of the paper superimposes the pollutant O3 concentration (a
    scalar field) on the wind-field texture; this class carries such data
    through the overlay stage.
    """

    def __init__(self, grid: Grid, data: np.ndarray, boundary: BoundaryMode = "clamp"):
        data = np.asarray(data, dtype=np.float64)
        if data.shape != grid.shape:
            raise FieldError(f"scalar data must have grid shape {grid.shape}, got {data.shape}")
        if not np.all(np.isfinite(data)):
            raise FieldError("scalar data contains non-finite values")
        self.grid = grid
        self.data = data
        self.boundary: BoundaryMode = boundary

    @classmethod
    def from_function(
        cls, grid: Grid, fn: Callable[[np.ndarray, np.ndarray], np.ndarray], boundary: BoundaryMode = "clamp"
    ) -> "ScalarField2D":
        X, Y = grid.mesh()
        return cls(grid, np.broadcast_to(np.asarray(fn(X, Y), dtype=np.float64), X.shape).copy(), boundary)

    @classmethod
    def zeros(cls, grid: Grid) -> "ScalarField2D":
        return cls(grid, np.zeros(grid.shape))

    def sample(self, points: np.ndarray, boundary: Optional[BoundaryMode] = None) -> np.ndarray:
        """Bilinear sample at world points ``(N, 2) -> (N,)``."""
        pts = _as_points(points)
        fx, fy = self.grid.world_to_fractional(pts)
        return bilinear_sample(self.data, fx, fy, boundary or self.boundary)

    def min(self) -> float:
        return float(self.data.min())

    def max(self) -> float:
        return float(self.data.max())

    def normalized(self, eps: float = 1e-12) -> "ScalarField2D":
        """Affinely rescale values into [0, 1] (constant fields map to 0)."""
        lo, hi = self.data.min(), self.data.max()
        if hi - lo < eps:
            return ScalarField2D(self.grid, np.zeros_like(self.data), self.boundary)
        return ScalarField2D(self.grid, (self.data - lo) / (hi - lo), self.boundary)

    def resampled_to(self, texture_shape: "tuple[int, int]") -> np.ndarray:
        """Resample onto a pixel raster covering the grid bounds.

        Returns a ``(height, width)`` array — the form consumed by the
        overlay compositor when draping the scalar over the texture.
        """
        h, w = texture_shape
        if h < 1 or w < 1:
            raise FieldError(f"invalid raster shape {texture_shape}")
        x0, x1, y0, y1 = self.grid.bounds
        xs = np.linspace(x0, x1, w)
        ys = np.linspace(y0, y1, h)
        X, Y = np.meshgrid(xs, ys)
        pts = np.stack([X.ravel(), Y.ravel()], axis=-1)
        return self.sample(pts).reshape(h, w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScalarField2D(shape={self.grid.shape}, range=[{self.min():.3g}, {self.max():.3g}])"
