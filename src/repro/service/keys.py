"""Content-addressed request keys.

A served texture is a pure function of three things: the field data (by
content, not by name — :func:`repro.fields.io.field_digest`), the
synthesis configuration (:meth:`SpotNoiseConfig.fingerprint`) and the
frame index the client asked for.  :class:`RequestKey` packs those into
one canonical digest, so identical work is identical bytes: two clients
asking for the same slice with the same knobs hash to the same cache
entry and coalesce onto the same in-flight render, no matter how their
requests were phrased.

Tile requests (a rectangular crop of the final texture, for map-style
pan/zoom clients) share the *render* key of their full frame: the full
texture is rendered and cached once, crops are sliced from it.  The tile
only participates in the request identity, never in the render identity.

Animation frames need a different identity: frame *t* of a temporally-
coherent sequence depends on every field the particles advected through,
so :class:`SequenceKey` addresses it by a rolling :func:`chain_digest`
over the per-frame field digests plus the advection step and life-cycle
policy (see :mod:`repro.anim.sequence` for the layer that builds these).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.config import SpotNoiseConfig
from repro.errors import ServiceError
from repro.fields.io import field_digest
from repro.fields.vectorfield import VectorField2D


@dataclass(frozen=True)
class TileSpec:
    """A crop of the final texture, in texture pixel coordinates.

    ``(x0, y0)`` is the lower-left corner in the library's y-up
    convention; ``(width, height)`` the crop extent.  Validated against
    the texture size at request time.
    """

    x0: int
    y0: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.x0 < 0 or self.y0 < 0:
            raise ServiceError(f"tile origin must be >= 0, got ({self.x0}, {self.y0})")
        if self.width < 1 or self.height < 1:
            raise ServiceError(
                f"tile extent must be >= 1, got {self.width}x{self.height}"
            )

    def validate_for(self, texture_size: int) -> None:
        if self.x0 + self.width > texture_size or self.y0 + self.height > texture_size:
            raise ServiceError(
                f"tile {self} exceeds the {texture_size}x{texture_size} texture"
            )

    def crop(self, texture):
        """Slice this tile out of a (size, size) y-up texture array."""
        return texture[self.y0 : self.y0 + self.height, self.x0 : self.x0 + self.width]


@dataclass(frozen=True)
class RequestKey:
    """Canonical identity of one texture request.

    Attributes
    ----------
    field_digest:
        SHA-256 of the field content (grid + data + boundary).
    config_fingerprint:
        SHA-256 of the full :class:`SpotNoiseConfig`.
    frame:
        Client-visible frame index.  Deliberately *not* part of the
        digest: the key is content-addressed, so two frames whose field
        bytes coincide are the same work and share one cache entry.  The
        frame is carried for observability (logs, traces, metrics).
    tile:
        Optional crop; ``None`` means the full texture.
    """

    field_digest: str
    config_fingerprint: str
    frame: int  #: cache-key: exempt (observability only; the key is content-addressed)
    tile: Optional[TileSpec] = None

    @property
    def digest(self) -> str:
        """SHA-256 hex digest of the canonical key string."""
        tile = self.tile
        tile_token = (
            "full" if tile is None else f"{tile.x0},{tile.y0},{tile.width},{tile.height}"
        )
        canon = f"{self.field_digest}|{self.config_fingerprint}|{tile_token}"
        return hashlib.sha256(canon.encode("ascii")).hexdigest()

    def render_key(self) -> "RequestKey":
        """The key of the full-frame render backing this request."""
        if self.tile is None:
            return self
        return replace(self, tile=None)


def ring_hash(token: str) -> int:
    """Stable 64-bit ring position of *token*.

    The consistent-hash ring (:mod:`repro.cluster.ring`) places both
    virtual node points and request-key digests by this function.  It is
    derived from SHA-256 — never from Python's salted ``hash()`` — so
    ownership of the existing :class:`RequestKey`/:class:`SequenceKey`
    digests is identical in every process of a fleet and across
    restarts: a key's owner is a pure function of the key and the node
    set, which is what lets any node route (or proxy) a request to the
    single node that renders it.
    """
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


def chunk_digest(payload: bytes) -> str:
    """Content address of one transport chunk (SHA-256 of its bytes).

    The delta transport (:mod:`repro.anim.delta`) chunks frame payloads
    and addresses every chunk by the digest of its *stored-form* bytes,
    so identical chunks — all-zero diff regions, repeated keyframes,
    shared prefixes across sequences — collapse to one blob, and a
    client can verify a synced chunk before applying it.
    """
    return hashlib.sha256(payload).hexdigest()


def chain_digest(previous: Optional[str], field_digest_hex: str) -> str:
    """Extend a sequence's rolling field digest by one frame.

    ``chain_digest(None, d0)`` starts a chain; ``chain_digest(c, d)``
    appends.  The chain value after frame *t* commits to the *ordered*
    field contents of frames ``0..t``, so it is the data half of a
    :class:`SequenceKey`: frame *t* of a temporally-coherent animation
    depends on every field the particles advected through, not just the
    one splatted last.  Two sequences sharing a prefix share chain
    values (and hence cached frames and checkpoints) for that prefix.
    """
    canon = f"{previous or 'root'}>{field_digest_hex}"
    return hashlib.sha256(canon.encode("ascii")).hexdigest()


@dataclass(frozen=True)
class SequenceKey:
    """Canonical identity of one frame of an animation sequence.

    A sequence frame is a pure function of four things: the ordered
    field contents up to and including this frame (``field_chain``, a
    :func:`chain_digest` value), the synthesis configuration, the
    advection step ``dt`` and the evolution-policy token (life-cycle
    knobs are not part of :meth:`SpotNoiseConfig.fingerprint` but do
    change every frame after the first).  As with :class:`RequestKey`,
    the frame index itself is carried for observability only — the chain
    already commits to the frame's position in the sequence.

    ``digest`` addresses the frame's rendered texture; ``state_digest``
    addresses the pipeline-state checkpoint captured *after* this frame
    (i.e. the state a resumed render needs to produce frame ``frame+1``).
    """

    field_chain: str
    config_fingerprint: str
    frame: int  #: cache-key: exempt (the field chain already commits to the position)
    dt: float
    policy_token: str = "default"

    @property
    def digest(self) -> str:
        """SHA-256 digest addressing this frame's texture."""
        canon = (
            f"seq|{self.field_chain}|{self.config_fingerprint}|"
            f"{self.dt!r}|{self.policy_token}"
        )
        return hashlib.sha256(canon.encode("ascii")).hexdigest()

    @property
    def state_digest(self) -> str:
        """SHA-256 digest addressing the post-frame pipeline checkpoint."""
        canon = (
            f"seqstate|{self.field_chain}|{self.config_fingerprint}|"
            f"{self.dt!r}|{self.policy_token}"
        )
        return hashlib.sha256(canon.encode("ascii")).hexdigest()


def policy_token(policy) -> str:
    """Canonical token of a :class:`~repro.advection.lifecycle.LifeCyclePolicy`.

    Keyed explicitly (not ``repr``) so unrelated future fields with
    defaults cannot silently change existing sequence identities.
    """
    return (
        f"{policy.position_mode}|{policy.boundary}|"
        f"{policy.lifetime}|{policy.fade_frames}"
    )


def request_key(
    field: VectorField2D,
    config: SpotNoiseConfig,
    frame: int = 0,
    tile: Optional[TileSpec] = None,
    field_digest_hex: Optional[str] = None,
) -> RequestKey:
    """Build the canonical key for serving *frame* of *field* under *config*.

    Pass *field_digest_hex* when the field digest is already known (the
    service memoises digests for immutable stores) to skip re-hashing
    the data.
    """
    if tile is not None:
        tile.validate_for(config.texture_size)
    return RequestKey(
        field_digest=field_digest_hex or field_digest(field),
        config_fingerprint=config.fingerprint(),
        frame=int(frame),
        tile=tile,
    )
