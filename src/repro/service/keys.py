"""Content-addressed request keys.

A served texture is a pure function of three things: the field data (by
content, not by name — :func:`repro.fields.io.field_digest`), the
synthesis configuration (:meth:`SpotNoiseConfig.fingerprint`) and the
frame index the client asked for.  :class:`RequestKey` packs those into
one canonical digest, so identical work is identical bytes: two clients
asking for the same slice with the same knobs hash to the same cache
entry and coalesce onto the same in-flight render, no matter how their
requests were phrased.

Tile requests (a rectangular crop of the final texture, for map-style
pan/zoom clients) share the *render* key of their full frame: the full
texture is rendered and cached once, crops are sliced from it.  The tile
only participates in the request identity, never in the render identity.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.config import SpotNoiseConfig
from repro.errors import ServiceError
from repro.fields.io import field_digest
from repro.fields.vectorfield import VectorField2D


@dataclass(frozen=True)
class TileSpec:
    """A crop of the final texture, in texture pixel coordinates.

    ``(x0, y0)`` is the lower-left corner in the library's y-up
    convention; ``(width, height)`` the crop extent.  Validated against
    the texture size at request time.
    """

    x0: int
    y0: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.x0 < 0 or self.y0 < 0:
            raise ServiceError(f"tile origin must be >= 0, got ({self.x0}, {self.y0})")
        if self.width < 1 or self.height < 1:
            raise ServiceError(
                f"tile extent must be >= 1, got {self.width}x{self.height}"
            )

    def validate_for(self, texture_size: int) -> None:
        if self.x0 + self.width > texture_size or self.y0 + self.height > texture_size:
            raise ServiceError(
                f"tile {self} exceeds the {texture_size}x{texture_size} texture"
            )

    def crop(self, texture):
        """Slice this tile out of a (size, size) y-up texture array."""
        return texture[self.y0 : self.y0 + self.height, self.x0 : self.x0 + self.width]


@dataclass(frozen=True)
class RequestKey:
    """Canonical identity of one texture request.

    Attributes
    ----------
    field_digest:
        SHA-256 of the field content (grid + data + boundary).
    config_fingerprint:
        SHA-256 of the full :class:`SpotNoiseConfig`.
    frame:
        Client-visible frame index.  Deliberately *not* part of the
        digest: the key is content-addressed, so two frames whose field
        bytes coincide are the same work and share one cache entry.  The
        frame is carried for observability (logs, traces, metrics).
    tile:
        Optional crop; ``None`` means the full texture.
    """

    field_digest: str
    config_fingerprint: str
    frame: int
    tile: Optional[TileSpec] = None

    @property
    def digest(self) -> str:
        """SHA-256 hex digest of the canonical key string."""
        tile = self.tile
        tile_token = (
            "full" if tile is None else f"{tile.x0},{tile.y0},{tile.width},{tile.height}"
        )
        canon = f"{self.field_digest}|{self.config_fingerprint}|{tile_token}"
        return hashlib.sha256(canon.encode("ascii")).hexdigest()

    def render_key(self) -> "RequestKey":
        """The key of the full-frame render backing this request."""
        if self.tile is None:
            return self
        return replace(self, tile=None)


def request_key(
    field: VectorField2D,
    config: SpotNoiseConfig,
    frame: int = 0,
    tile: Optional[TileSpec] = None,
    field_digest_hex: Optional[str] = None,
) -> RequestKey:
    """Build the canonical key for serving *frame* of *field* under *config*.

    Pass *field_digest_hex* when the field digest is already known (the
    service memoises digests for immutable stores) to skip re-hashing
    the data.
    """
    if tile is not None:
        tile.validate_for(config.texture_size)
    return RequestKey(
        field_digest=field_digest_hex or field_digest(field),
        config_fingerprint=config.fingerprint(),
        frame=int(frame),
        tile=tile,
    )
