"""The texture serving front end.

:class:`TextureService` binds a *field source* (anything mapping a frame
index to a :class:`~repro.fields.vectorfield.VectorField2D` — a DNS
store, a steering session's frame history, an analytic generator) to one
:class:`~repro.core.config.SpotNoiseConfig` and serves rendered textures
through the full stack:

1. the request is keyed by content (:mod:`repro.service.keys`);
2. the two-tier cache answers memory and disk hits;
3. misses coalesce through the single-flight scheduler
   (:mod:`repro.service.scheduler`) onto a deterministic render
   (:func:`repro.core.synthesizer.render_frame`) with a pooled
   divide-and-conquer runtime;
4. admission control sheds renders past the latency budget;
5. every step reports into :class:`~repro.service.stats.ServiceStats`.

Responses are bit-identical to a fresh render of the same request — the
cache stores exactly what the renderer produced, the disk tier round
trips float64 exactly, and the renderer itself is a pure function of
``(config, field)``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.config import SpotNoiseConfig
from repro.core.synthesizer import render_frame
from repro.errors import AdmissionError, ServiceError
from repro.fields.io import field_digest
from repro.fields.vectorfield import VectorField2D
from repro.machine.workload import workload_from_config
from repro.parallel.planner import DecompositionPlan, DecompositionPlanner
from repro.parallel.runtime import DivideAndConquerRuntime, spatial_feasibility
from repro.service.admission import AdmissionController, LatencyPredictor
from repro.service.cache import DiskTextureCache, LRUTextureCache, TieredTextureCache
from repro.service.keys import RequestKey, TileSpec
from repro.service.scheduler import RequestScheduler
from repro.service.stats import ServiceStats

FieldSource = Callable[[int], VectorField2D]

#: Default in-memory budget: 64 MiB ≈ 32 float64 textures at 512².
DEFAULT_MEMORY_BUDGET = 64 << 20


@dataclass(frozen=True)
class TextureResponse:
    """One served texture.

    ``texture`` is read-only when it came from the memory tier (it is
    the cache's own array; copy before mutating).  ``source`` is one of
    ``"memory"``, ``"disk"``, ``"render"`` or ``"coalesced"``.
    """

    texture: np.ndarray
    key: RequestKey
    source: str
    latency_s: float
    predicted_s: Optional[float] = None


class FrameRenderer:
    """Deterministic per-config renderer with a pooled runtime.

    Every call builds a fresh pipeline (re-seeded from ``config.seed``)
    but reuses one :class:`DivideAndConquerRuntime`, so thread or
    process pools persist across renders the way they persist across
    animation frames.
    """

    def __init__(self, config: SpotNoiseConfig):
        self.config = config
        self.runtime = DivideAndConquerRuntime(config)
        # Maintained by TextureService (under its re-plan lock) so a
        # renderer superseded by a re-plan can be closed as soon as its
        # last in-flight render finishes instead of accumulating until
        # service shutdown.
        self.active_renders = 0
        self.retired = False

    def render(self, field: VectorField2D) -> np.ndarray:
        frame = render_frame(self.config, field, runtime=self.runtime)
        return frame.display

    def close(self) -> None:
        self.runtime.close()


@dataclass(frozen=True)
class _RenderBinding:
    """One request's consistent snapshot of the re-plannable state.

    ``config``, ``fingerprint`` and ``renderer`` are read together under
    the re-plan lock, so a drift re-plan can never split a request across
    two plans — the digest a texture is cached under always describes
    the config that rendered it.  The binding holds one
    ``active_renders`` reference on its renderer from creation; whoever
    consumes the binding releases it (directly, or via the render
    closure's epilogue).
    """

    config: SpotNoiseConfig
    fingerprint: str
    renderer: FrameRenderer


class TextureService:
    """Request-coalescing, cache-backed texture server.

    Parameters
    ----------
    field_source:
        Callable ``frame -> VectorField2D``.  Must be safe to call from
        worker threads.
    config:
        Synthesis configuration served by this instance (one service =
        one config; run several services to serve several mappings).
    memory_budget_bytes:
        Byte budget of the in-memory LRU tier (0 disables it in all but
        name — every put is rejected, so every request renders or goes
        to disk).
    disk_dir:
        Optional directory for the content-addressed disk tier.
    n_workers:
        Render worker threads (distinct-request concurrency).
    admission:
        Optional :class:`AdmissionController`; absent means never shed.
    predictor:
        Latency predictor (defaults to a fresh Onyx2-cost predictor that
        self-calibrates from observed renders).
    memoize_digests:
        Cache ``frame -> field digest`` so cache hits skip loading the
        field entirely.  Off by default because it is only sound for
        immutable sources (a flushed store, a recorded history — the
        in-repo clients opt in); under a source whose frames mutate it
        would serve stale textures, since content changes could no
        longer change the key.
    planner:
        Decomposition planner used when ``config.backend == "auto"``:
        frame 0 is loaded eagerly, the workload priced, and the
        cheapest (backend, n_groups, partition) triple becomes the
        service's *resolved* config.  The resolved config — not the
        requested ``"auto"`` one — is what gets fingerprinted into
        cache keys, so a different plan can only ever cause an extra
        render, never a wrong cache hit.
    replan_drift:
        With an auto config, re-plan when the predictor's learned
        calibration scale drifts by more than this factor from the
        scale the current plan was priced at (the balance between
        render work and parallel overhead is exactly what calibration
        shifts).  A changed plan swaps in a fresh renderer and new
        cache keys atomically; in-flight renders keep the renderer
        they started with.
    """

    def __init__(
        self,
        field_source: FieldSource,
        config: SpotNoiseConfig,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET,
        disk_dir: "str | None" = None,
        n_workers: int = 2,
        admission: Optional[AdmissionController] = None,
        predictor: Optional[LatencyPredictor] = None,
        memoize_digests: bool = False,
        preview_pgm: bool = False,
        stats: Optional[ServiceStats] = None,
        planner: Optional[DecompositionPlanner] = None,
        replan_drift: float = 2.0,
    ):
        if config.seed is None:
            # The whole subsystem rests on render_frame being a pure
            # function of (config, field); an unseeded config re-rolls
            # the spot population per render, so cached/coalesced
            # responses would silently stop matching fresh renders.
            raise ServiceError(
                "TextureService requires a deterministic config: set "
                "SpotNoiseConfig.seed to an integer (got seed=None)"
            )
        if replan_drift <= 1.0:
            raise ServiceError(
                f"replan_drift must be > 1 (a drift factor), got {replan_drift}"
            )
        self.field_source = field_source
        self.requested_config = config
        self.stats = stats or ServiceStats()
        self.predictor = predictor or LatencyPredictor()
        self.admission = admission
        self._grid_shape: Optional[Tuple[int, int]] = None
        self._planner: Optional[DecompositionPlanner] = None
        self._plan: Optional[DecompositionPlan] = None  #: guarded-by: _replan_lock
        self._plan_scale = 1.0  #: guarded-by: _replan_lock
        self._replan_drift = float(replan_drift)
        self._replan_lock = threading.Lock()
        self._retired_renderers: "list[FrameRenderer]" = []  #: guarded-by: _replan_lock
        self.replans = 0  #: guarded-by: _replan_lock
        if config.backend == "auto":
            self._planner = planner or DecompositionPlanner()
            field0 = field_source(0)
            self._grid_shape = tuple(field0.grid.shape)
            self._plan_workload = workload_from_config(config, field0)
            # Feasibility is a pure function of geometry + config, so
            # the per-group answers can be memoised for re-planning
            # without keeping frame 0 alive.
            feasible = spatial_feasibility(config, field0)
            self._spatial_ok_cache: Dict[int, bool] = {}

            def spatial_ok(n_groups: int, _f=feasible) -> bool:
                if n_groups not in self._spatial_ok_cache:
                    self._spatial_ok_cache[n_groups] = _f(n_groups)
                return self._spatial_ok_cache[n_groups]

            self._spatial_ok = spatial_ok
            self._plan_scale = self.predictor.scale or 1.0
            self._plan = self._planner.plan(
                self._plan_workload, scale=self._plan_scale, spatial_ok=spatial_ok
            )
            config = self._plan.apply(config)
        self.config = config  #: guarded-by: _replan_lock
        disk = DiskTextureCache(disk_dir, preview_pgm=preview_pgm) if disk_dir else None
        self.cache = TieredTextureCache(LRUTextureCache(memory_budget_bytes), disk)
        self.renderer = FrameRenderer(config)  #: guarded-by: _replan_lock
        self.scheduler = RequestScheduler(n_workers=n_workers, admit=self._admit)
        self.stats.queue_depth_probe = self.scheduler.queue_depth
        self._fingerprint = config.fingerprint()  #: guarded-by: _replan_lock
        self._memoize_digests = memoize_digests
        self._digests: Dict[int, str] = {}
        self._digest_lock = threading.Lock()
        self._closed = False

    # -- construction helpers ----------------------------------------------------
    @classmethod
    def for_store(cls, store, config: SpotNoiseConfig, **kwargs) -> "TextureService":
        """Serve a :class:`~repro.apps.dns.store.ChunkedFieldStore`.

        Store frames are immutable once flushed, so digests are memoised
        by default.
        """
        kwargs.setdefault("memoize_digests", True)
        return cls(store.read, config, **kwargs)

    # -- planning --------------------------------------------------------------
    @property
    def plan(self) -> Optional[DecompositionPlan]:
        """The resolved decomposition plan (``None`` without auto)."""
        with self._replan_lock:
            return self._plan

    def _maybe_replan(self) -> None:
        """Re-plan when the learned calibration has drifted enough.

        Called from render workers after each calibration observation.
        A changed plan swaps the resolved config, fingerprint and
        renderer together; renders already in flight finish on the
        renderer they bound at submission, so every cache entry is
        consistent with the key it was stored under.
        """
        if self._planner is None:
            return
        scale = self.predictor.scale
        if scale is None:
            return
        with self._replan_lock:
            ref = self._plan_scale
            drift = scale / ref if ref > 0 else float("inf")
            if 1.0 / self._replan_drift <= drift <= self._replan_drift:
                return
            plan = self._planner.plan(
                self._plan_workload, scale=scale, spatial_ok=self._spatial_ok
            )
            self._plan_scale = scale
            if plan.triple == self._plan.triple:
                self._plan = plan  # same decomposition, fresher pricing
                return
            config = plan.apply(self.requested_config)
            renderer = FrameRenderer(config)
            old = self.renderer
            old.retired = True
            close_now = old.active_renders == 0
            if not close_now:
                # Closed by the last in-flight render's epilogue.
                self._retired_renderers.append(old)
            self._plan = plan
            self.config = config
            self.renderer = renderer
            self._fingerprint = config.fingerprint()
            self.replans += 1
        if close_now:
            old.close()

    def _check_drift(self) -> bool:
        """Supervisor-facing drift check: ``True`` iff a plan was adopted."""
        with self._replan_lock:
            before = self.replans
        self._maybe_replan()
        with self._replan_lock:
            return self.replans > before

    def supervise(self, supervisor) -> None:
        """Register with a :class:`~repro.runtime.supervisor.PlanSupervisor`.

        Turns re-planning from a render-epilogue side effect into a
        continuous loop task: the supervisor folds the predictor's
        calibration-drift stream into :meth:`_maybe_replan` at its own
        cadence, so a service that has gone idle (or serves only cache
        hits) still adopts a better plan when the host drifts.
        """
        supervisor.watch(f"texture:{id(self):x}", self._check_drift)

    # -- internals -------------------------------------------------------------
    def _bind_render(self) -> _RenderBinding:
        """Snapshot (config, fingerprint, renderer) consistently.

        The triple must be read in one critical section: a request that
        keyed its digest with one plan's fingerprint but rendered with
        the next plan's renderer would cache the new plan's bytes under
        the old plan's key.  Takes one ``active_renders`` reference; the
        caller owns it until the binding is consumed.
        """
        with self._replan_lock:
            renderer = self.renderer
            renderer.active_renders += 1
            return _RenderBinding(self.config, self._fingerprint, renderer)

    def _current_config(self) -> SpotNoiseConfig:
        with self._replan_lock:
            return self.config

    def _admit(self, queue_depth: int) -> None:
        if self.admission is not None:
            predicted = self.predictor.predict(
                self._current_config(), grid_shape=self._grid_shape
            )
            self.admission.admit(predicted, queue_depth)

    def _load_field(self, frame: int) -> VectorField2D:
        field = self.field_source(frame)
        if self._grid_shape is None:
            self._grid_shape = tuple(field.grid.shape)
        return field

    def _key_for(
        self, frame: int, fingerprint: str
    ) -> "tuple[RequestKey, Optional[VectorField2D]]":
        """Compute the request key, loading the field only when needed.

        *fingerprint* comes from the caller's :class:`_RenderBinding`
        snapshot, never from ``self`` — the key must describe the config
        the bound renderer will actually run.
        """
        if self._memoize_digests:
            with self._digest_lock:
                digest = self._digests.get(frame)
            if digest is not None:
                return (
                    RequestKey(digest, fingerprint, frame),
                    None,
                )
        field = self._load_field(frame)
        digest = field_digest(field)
        if self._memoize_digests:
            with self._digest_lock:
                self._digests[frame] = digest
        return RequestKey(digest, fingerprint, frame), field

    def invalidate_frame(self, frame: int) -> None:
        """Drop a memoised digest (a mutable source rewrote *frame*)."""
        with self._digest_lock:
            self._digests.pop(frame, None)

    def render_digest(self, frame: int) -> str:
        """The full-frame render digest of *frame* — the routing key.

        A cluster node (:mod:`repro.cluster.node`) needs the key a
        request *would* be cached under before deciding which peer owns
        it, without rendering anything.  Computed from the same
        fingerprint snapshot the request path uses, so the owner a node
        routes to is the owner of the digest it would serve locally.
        With ``memoize_digests`` the field is loaded at most once per
        frame across all routing and serving calls.
        """
        with self._replan_lock:
            fingerprint = self._fingerprint
        key, _ = self._key_for(frame, fingerprint)
        return key.digest

    # -- the request path --------------------------------------------------------
    def request(
        self,
        frame: int,
        tile: Optional[TileSpec] = None,
        timeout: Optional[float] = None,
    ) -> TextureResponse:
        """Serve one texture request (blocking).

        Raises :class:`~repro.errors.AdmissionError` when admission
        control sheds the render, and propagates renderer errors.
        """
        if self._closed:
            raise ServiceError("service is closed")
        if tile is not None:
            # texture_size is plan-invariant, so the requested config
            # answers without touching re-plannable state.
            tile.validate_for(self.requested_config.texture_size)
        t0 = time.perf_counter()
        self.stats.record_request()
        binding = self._bind_render()
        owned = True
        try:
            key, field = self._key_for(frame, binding.fingerprint)
            render_digest = key.digest  # full-frame digest (tile=None key)
            texture, tier = self.cache.get(render_digest)
            predicted: Optional[float] = None
            if texture is not None:
                source = tier or "memory"
            else:
                predicted = self.predictor.predict(
                    binding.config, grid_shape=self._grid_shape
                )
                owned = False  # _render_coalesced owns the ref from here
                texture, source = self._render_coalesced(
                    render_digest, frame, field, predicted, timeout, binding
                )
        except AdmissionError:
            self.stats.record_shed()
            raise
        except Exception:
            self.stats.record_error()
            raise
        finally:
            if owned:
                self._release_renderer_ref(binding.renderer)
        latency = time.perf_counter() - t0
        self.stats.record_response(source, latency)
        out = tile.crop(texture) if tile is not None else texture
        return TextureResponse(
            texture=out,
            key=RequestKey(key.field_digest, key.config_fingerprint, frame, tile),
            source=source,
            latency_s=latency,
            predicted_s=predicted,
        )

    def _make_render(
        self,
        render_digest: str,
        frame: int,
        field: Optional[VectorField2D],
        predicted: Optional[float],
        binding: _RenderBinding,
    ) -> "Callable[[], np.ndarray]":
        # The binding was snapshotted (with its active_renders ref) when
        # the request was keyed: a drift re-plan may swap self.renderer
        # while this render waits in the queue, and the bytes cached
        # under `render_digest` must come from the plan that digest was
        # keyed with.  The refcount lets a re-plan close the superseded
        # renderer the moment its last bound render finishes.
        renderer = binding.renderer
        config = binding.config

        def do_render() -> np.ndarray:
            try:
                f = field if field is not None else self._load_field(frame)
                t0 = time.perf_counter()
                texture = renderer.render(f)
                actual = time.perf_counter() - t0
                self.cache.put(render_digest, texture)
                self.predictor.observe(config, actual, grid_shape=self._grid_shape)
                self.stats.record_render(predicted, actual)
            finally:
                self._release_renderer_ref(renderer)
            self._maybe_replan()
            return texture

        return do_render

    def _release_renderer_ref(self, renderer: FrameRenderer) -> None:
        """Drop one in-flight reference; close a fully-drained retiree."""
        close_now = False
        with self._replan_lock:
            renderer.active_renders -= 1
            if renderer.retired and renderer.active_renders == 0:
                close_now = True
                if renderer in self._retired_renderers:
                    self._retired_renderers.remove(renderer)
        if close_now:
            renderer.close()

    def _render_coalesced(
        self,
        render_digest: str,
        frame: int,
        field: Optional[VectorField2D],
        predicted: Optional[float],
        timeout: Optional[float],
        binding: _RenderBinding,
    ) -> "tuple[np.ndarray, str]":
        render = self._make_render(render_digest, frame, field, predicted, binding)
        try:
            ticket, created = self.scheduler.submit(render_digest, render)
        except BaseException:
            self._release_renderer_ref(binding.renderer)  # closure never runs
            raise
        if not created:
            self._release_renderer_ref(binding.renderer)  # coalesced: closure dropped
        texture = ticket.wait(timeout)
        return texture, ("render" if created else "coalesced")

    def prefetch(self, frames: Iterable[int]) -> int:
        """Queue renders for uncached *frames* without waiting; returns
        the number of new renders scheduled (duplicates and cache hits
        cost nothing)."""
        scheduled = 0
        for frame in frames:
            binding = self._bind_render()
            owned = True
            try:
                key, field = self._key_for(frame, binding.fingerprint)
                if self.cache.get(key.digest)[0] is not None:
                    continue
                render = self._make_render(key.digest, frame, field, None, binding)
                try:
                    _, created = self.scheduler.submit(key.digest, render)
                except AdmissionError:
                    self.stats.record_shed()
                    continue
                if created:
                    owned = False  # the queued closure releases the ref
                scheduled += int(created)
            finally:
                if owned:
                    self._release_renderer_ref(binding.renderer)
        return scheduled

    # -- the sequence-streaming sibling ------------------------------------------
    def animation_service(self, dt: Optional[float] = None, **kwargs):
        """An :class:`~repro.anim.service.AnimationService` over the same
        source and config.

        Point requests stay on this service; temporally-coherent
        sequence traffic (scrubbing, replay, steering dashboards) goes
        to the sibling, which threads pipeline state across frames
        instead of treating every frame as independent.  The two address
        different content (a sequence frame depends on every field
        before it), so they never share cache entries even when handed
        the same ``disk_dir``.
        """
        from repro.anim.service import AnimationService

        return AnimationService(
            self.field_source, self._current_config(), dt=dt, **kwargs
        )

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.scheduler.close()
        with self._replan_lock:
            renderer = self.renderer
            retired = self._retired_renderers
            self._retired_renderers = []
        renderer.close()
        for r in retired:
            r.close()

    def __enter__(self) -> "TextureService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
