"""Two-tier texture cache: in-memory LRU over an optional disk tier.

The memory tier (:class:`LRUTextureCache`) holds rendered textures under
a byte budget with least-recently-used eviction; entries are stored
read-only and returned without copying, so a hit costs a dict lookup.
The disk tier (:class:`DiskTextureCache`) is content-addressed ``.npz``
files — exact float64 round trip, written via a same-directory temp file
and ``os.replace`` so a crash can never leave a half-written texture to
serve — with an optional human-browsable PGM preview per entry (written
through :func:`repro.viz.image.write_pgm`, which is atomic for the same
reason).  :class:`TieredTextureCache` stacks the two: memory first, then
disk with promotion back into memory.

All three are thread-safe; the scheduler's workers and any number of
client threads may hit them concurrently.
"""

from __future__ import annotations

import os
import threading
import zipfile
from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import ServiceError
from repro.utils.fileio import atomic_write
from repro.viz.image import write_pgm


def _freeze(texture: np.ndarray) -> np.ndarray:
    """Canonicalise to a C-ordered float64 array and mark it read-only."""
    t = np.ascontiguousarray(texture, dtype=np.float64)
    if t is texture:
        t = t.copy()
    t.flags.writeable = False
    return t


class LRUTextureCache:
    """In-memory LRU texture cache bounded by a byte budget.

    Parameters
    ----------
    byte_budget:
        Maximum total ``nbytes`` of cached textures.  A single texture
        larger than the budget is simply not admitted (the put is a
        no-op) — evicting the whole cache for one oversized entry would
        trade many future hits for one.
    """

    def __init__(self, byte_budget: int):
        if byte_budget < 0:
            raise ServiceError(f"byte_budget must be >= 0, got {byte_budget}")
        self.byte_budget = int(byte_budget)
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()  #: guarded-by: _lock
        self._nbytes = 0  #: guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  #: guarded-by: _lock
        self.misses = 0  #: guarded-by: _lock
        self.evictions = 0  #: guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._nbytes

    def get(self, digest: str) -> Optional[np.ndarray]:
        """Return the cached texture (read-only, no copy) or ``None``."""
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return entry

    def put(self, digest: str, texture: np.ndarray) -> bool:
        """Insert a texture; returns ``False`` if it exceeds the budget."""
        frozen = _freeze(texture)
        if frozen.nbytes > self.byte_budget:
            return False
        with self._lock:
            old = self._entries.pop(digest, None)
            if old is not None:
                self._nbytes -= old.nbytes
            self._entries[digest] = frozen
            self._nbytes += frozen.nbytes
            while self._nbytes > self.byte_budget:
                _, evicted = self._entries.popitem(last=False)
                self._nbytes -= evicted.nbytes
                self.evictions += 1
        return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes = 0


class DiskBlobStore:
    """Content-addressed on-disk store of named-array bundles and raw blobs.

    Each array entry is ``<digest>.npz`` holding a ``{name: array}``
    bundle; raw-byte entries (:meth:`put_bytes`, used by the delta
    transport for compressed frame chunks) are ``<digest>.blob``.  All
    writes go through a same-directory temp file and ``os.replace`` so
    readers never observe a partial entry.  A corrupt or truncated file
    (e.g. from a pre-atomic-write era or disk fault) is treated as a
    miss and removed.  :class:`DiskTextureCache` is the one-texture
    specialisation; the animation layer's pipeline-state checkpoints and
    delta chunks (:mod:`repro.anim`) use the store directly.

    Eviction (:meth:`evict`, :meth:`trim_to_bytes`) is safe against
    concurrent readers: removal is a single ``os.unlink``, so a reader
    that already opened the entry keeps its complete inode (POSIX
    semantics) and a reader arriving after sees a clean
    ``FileNotFoundError`` miss — never a truncated read.
    """

    def __init__(self, directory: "str | os.PathLike"):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0  #: guarded-by: _lock
        self.misses = 0  #: guarded-by: _lock
        self.evictions = 0  #: guarded-by: _lock

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.npz")

    def _blob_path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.blob")

    def _drop_corrupt(self, path: str, expected_ino: Optional[int] = None) -> None:
        """Remove a corrupt entry — but never a concurrently-replaced one.

        A reader that decided *path* is corrupt races writers: a ``put``
        may have atomically replaced the bad file with a good entry in
        the meantime, and unlinking by name would destroy the new bytes.
        When the reader knows the inode it actually read
        (*expected_ino*), the drop is skipped unless the name still
        refers to that same inode.
        """
        with self._lock:
            try:
                if expected_ino is not None and os.stat(path).st_ino != expected_ino:
                    return  # a writer already replaced it with fresh bytes
                os.unlink(path)
            except OSError:
                return

    def get(self, digest: str) -> "Optional[dict[str, np.ndarray]]":
        path = self._path(digest)
        ino = None
        try:
            with open(path, "rb") as fh:
                # The inode actually read; an eviction or replacement
                # racing this read retargets the *name*, never this
                # open handle, and the corrupt-drop below is guarded by
                # it so a concurrent put's fresh bytes survive.
                ino = os.fstat(fh.fileno()).st_ino
                with np.load(fh, allow_pickle=False) as archive:
                    bundle = {name: np.asarray(archive[name]) for name in archive.files}
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            if ino is not None:
                # We read the entry and found it corrupt: drop that
                # inode (a failure *opening* is just a miss, not a drop).
                self._drop_corrupt(path, expected_ino=ino)
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return bundle

    def put(self, digest: str, arrays: "dict[str, np.ndarray]") -> bool:
        payload = {name: np.asarray(a) for name, a in arrays.items()}
        atomic_write(
            self._path(digest),
            lambda fh: np.savez_compressed(fh, **payload),
        )
        return True

    # -- raw blobs (delta-transport chunks) --------------------------------------
    def get_bytes(self, digest: str) -> Optional[bytes]:
        """Return the raw payload stored under *digest*, or ``None``."""
        try:
            with open(self._blob_path(digest), "rb") as fh:
                payload = fh.read()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return payload

    def put_bytes(self, digest: str, payload: bytes) -> bool:
        atomic_write(self._blob_path(digest), lambda fh: fh.write(payload))
        return True

    def contains_bytes(self, digest: str) -> bool:
        return os.path.exists(self._blob_path(digest))

    def iter_blob_digests(self) -> "Iterator[str]":
        """Digests of every raw blob currently in the store (sorted).

        The cluster manifest publisher (:mod:`repro.cluster.manifest`)
        enumerates the store through this to build its chunk table.  The
        listing is a snapshot: a blob evicted between listing and read
        simply turns into a ``get_bytes`` miss, the store's usual
        contract.
        """
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".blob"):
                yield name[: -len(".blob")]

    # -- eviction ----------------------------------------------------------------
    def evict(self, digest: str) -> bool:
        """Remove *digest* (bundle or blob); ``True`` if anything was removed.

        Concurrent readers of the evicted entry either finish their read
        on the still-open inode or miss cleanly and refetch — the unlink
        is atomic, nothing is ever truncated in place.
        """
        removed = False
        for path in (self._path(digest), self._blob_path(digest)):
            try:
                os.unlink(path)
                removed = True
            except OSError:
                pass
        if removed:
            with self._lock:
                self.evictions += 1
        return removed

    def trim_to_bytes(self, byte_budget: int) -> int:
        """Evict oldest entries until the store is under *byte_budget*.

        Age is the filesystem mtime (content-addressed entries are never
        rewritten in place, so mtime is creation time).  Returns the
        number of entries removed.  Readers racing a trim see the same
        clean miss-and-refetch contract as :meth:`evict`.
        """
        if byte_budget < 0:
            raise ServiceError(f"byte_budget must be >= 0, got {byte_budget}")
        entries = []
        total = 0
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith((".npz", ".blob")):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue  # concurrently evicted
            entries.append((stat.st_mtime, name, path, stat.st_size))
            total += stat.st_size
        removed = 0
        for _, _, path, size in sorted(entries):
            if total <= byte_budget:
                break
            try:
                os.unlink(path)
            except OSError:
                continue  # a concurrent evictor got there first
            total -= size
            removed += 1
        if removed:
            with self._lock:
                self.evictions += removed
        return removed

    def __contains__(self, digest: str) -> bool:
        return os.path.exists(self._path(digest))


class MemoryBlobStore:
    """In-memory digest-addressed blob store (the no-disk delta tier).

    The raw-bytes face of :class:`DiskBlobStore` for services configured
    without a disk directory: delta-transport chunks live in a plain
    dict so decode-on-read and the bytes-shipped accounting work the
    same way whether or not a disk tier exists.  Thread-safe; eviction
    follows the same miss-and-refetch contract.
    """

    def __init__(self):
        self._entries: "Dict[str, bytes]" = {}  #: guarded-by: _lock
        self._lock = threading.Lock()
        self.hits = 0  #: guarded-by: _lock
        self.misses = 0  #: guarded-by: _lock
        self.evictions = 0  #: guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_bytes(self, digest: str) -> Optional[bytes]:
        with self._lock:
            payload = self._entries.get(digest)
            if payload is None:
                self.misses += 1
            else:
                self.hits += 1
            return payload

    def put_bytes(self, digest: str, payload: bytes) -> bool:
        with self._lock:
            self._entries[digest] = bytes(payload)
        return True

    def contains_bytes(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def iter_blob_digests(self) -> "Iterator[str]":
        """Digests of every blob in the store (sorted snapshot)."""
        with self._lock:
            digests = sorted(self._entries)
        return iter(digests)

    def evict(self, digest: str) -> bool:
        with self._lock:
            if self._entries.pop(digest, None) is None:
                return False
            self.evictions += 1
            return True

    def nbytes(self) -> int:
        with self._lock:
            return sum(len(p) for p in self._entries.values())


class DiskTextureCache(DiskBlobStore):
    """Content-addressed on-disk texture tier.

    The one-texture specialisation of :class:`DiskBlobStore` (entries
    are ``{"texture": float64 array}`` bundles, so the two share the
    atomic-write and corrupt-entry contract in one place), with an
    optional human-browsable PGM preview per entry.
    """

    def __init__(self, directory: "str | os.PathLike", preview_pgm: bool = False):
        super().__init__(directory)
        self.preview_pgm = preview_pgm

    def get(self, digest: str) -> Optional[np.ndarray]:  # type: ignore[override]
        bundle = super().get(digest)
        if bundle is None:
            return None
        texture = bundle.get("texture")
        if texture is None:
            # A foreign bundle under a texture digest: corrupt for this
            # tier's purposes.
            self._drop_corrupt(self._path(digest))
            with self._lock:
                self.hits -= 1
                self.misses += 1
            return None
        return np.asarray(texture, dtype=np.float64)

    def put(self, digest: str, texture: np.ndarray) -> bool:  # type: ignore[override]
        super().put(digest, {"texture": np.asarray(texture, dtype=np.float64)})
        if self.preview_pgm:
            preview = np.clip(texture, 0.0, 1.0)
            write_pgm(os.path.join(self.directory, f"{digest}.pgm"), preview)
        return True

    def nbytes_on_disk(self) -> int:
        total = 0
        for name in os.listdir(self.directory):
            if name.endswith(".npz"):
                total += os.path.getsize(os.path.join(self.directory, name))
        return total


class TieredTextureCache:
    """Memory tier over an optional disk tier, with promotion on disk hits."""

    def __init__(self, memory: LRUTextureCache, disk: Optional[DiskTextureCache] = None):
        self.memory = memory
        self.disk = disk

    def get(self, digest: str) -> Tuple[Optional[np.ndarray], Optional[str]]:
        """Return ``(texture, tier)``; tier is ``"memory"``, ``"disk"`` or ``None``."""
        texture = self.memory.get(digest)
        if texture is not None:
            return texture, "memory"
        if self.disk is not None:
            texture = self.disk.get(digest)
            if texture is not None:
                self.memory.put(digest, texture)
                return texture, "disk"
        return None, None

    def put(self, digest: str, texture: np.ndarray) -> None:
        self.memory.put(digest, texture)
        if self.disk is not None:
            self.disk.put(digest, texture)
