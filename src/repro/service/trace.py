"""Request traces and the replay harness.

Three synthetic workloads model how visualization traffic actually
arrives at a texture server:

* :func:`uniform_trace` — every frame equally likely (worst case for a
  cache smaller than the working set);
* :func:`zipf_trace` — a few hot frames dominate (dashboards re-pulling
  the same smog slices);
* :func:`scrubbing_trace` — a random walk with occasional jumps (users
  dragging a time slider through a DNS database).

:func:`replay` drives a :class:`~repro.service.server.TextureService`
with N concurrent client threads, and :func:`replay_uncached` renders
the same trace with no cache and no coalescing — the honest baseline a
speedup claim needs.  Both return a :class:`ReplayResult`; ``replay``
can additionally verify that a sample of served textures is
bit-identical to fresh renders.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import AdmissionError, ServiceError
from repro.service.server import TextureService
from repro.utils.rng import as_rng


def uniform_trace(n_requests: int, n_frames: int, seed: int = 0) -> List[int]:
    """Independent uniform draws over ``[0, n_frames)``."""
    _check(n_requests, n_frames)
    rng = as_rng(seed)
    return [int(f) for f in rng.integers(0, n_frames, size=n_requests)]


def zipf_trace(
    n_requests: int, n_frames: int, exponent: float = 1.1, seed: int = 0
) -> List[int]:
    """Zipf-distributed frame popularity (rank-permuted so the hot
    frames are scattered through the database, not clustered at 0)."""
    _check(n_requests, n_frames)
    if exponent <= 0:
        raise ServiceError(f"zipf exponent must be positive, got {exponent}")
    rng = as_rng(seed)
    ranks = np.arange(1, n_frames + 1, dtype=np.float64)
    p = ranks**-exponent
    p /= p.sum()
    frames = rng.permutation(n_frames)  # rank -> frame
    draws = rng.choice(n_frames, size=n_requests, p=p)
    return [int(frames[d]) for d in draws]


def scrubbing_trace(
    n_requests: int,
    n_frames: int,
    jump_probability: float = 0.1,
    seed: int = 0,
) -> List[int]:
    """A slider scrub: mostly ±1 steps, occasional random seeks."""
    _check(n_requests, n_frames)
    if not (0.0 <= jump_probability <= 1.0):
        raise ServiceError("jump_probability must be in [0, 1]")
    rng = as_rng(seed)
    out: List[int] = []
    position = int(rng.integers(0, n_frames))
    for _ in range(n_requests):
        if rng.random() < jump_probability:
            position = int(rng.integers(0, n_frames))
        else:
            position = int(np.clip(position + rng.choice((-1, 1)), 0, n_frames - 1))
        out.append(position)
    return out


def _check(n_requests: int, n_frames: int) -> None:
    if n_requests < 1:
        raise ServiceError(f"n_requests must be >= 1, got {n_requests}")
    if n_frames < 1:
        raise ServiceError(f"n_frames must be >= 1, got {n_frames}")


@dataclass
class ReplayResult:
    """Outcome of replaying one trace."""

    n_requests: int
    n_clients: int
    duration_s: float
    renders: int
    sources: Dict[str, int] = field(default_factory=dict)
    sheds: int = 0
    bit_identical: Optional[bool] = None

    @property
    def completed(self) -> int:
        """Requests actually served (shed requests are not work done)."""
        return self.n_requests - self.sheds

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0


def _run_clients(n_clients: int, worker: Callable[[], None]) -> List[BaseException]:
    errors: List[BaseException] = []
    error_lock = threading.Lock()

    def guarded() -> None:
        try:
            worker()
        except BaseException as exc:  # noqa: BLE001 - surfaced to the caller
            with error_lock:
                errors.append(exc)

    threads = [threading.Thread(target=guarded, daemon=True) for _ in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


def replay(
    service: TextureService,
    trace: Sequence[int],
    n_clients: int = 1,
    verify_fresh: Optional[Callable[[int], np.ndarray]] = None,
    verify_sample: int = 8,
) -> ReplayResult:
    """Replay *trace* against *service* with *n_clients* threads.

    Clients pull the next trace entry from a shared cursor, so the
    interleaving is realistic (concurrent duplicates happen whenever two
    clients land on the same hot frame).  With *verify_fresh* — a
    callable rendering frame *f* from scratch — up to *verify_sample*
    distinct frames are re-rendered after the replay and compared
    bit-for-bit against what the service returned.
    """
    if n_clients < 1:
        raise ServiceError(f"n_clients must be >= 1, got {n_clients}")
    cursor_lock = threading.Lock()
    cursor = [0]
    served: Dict[int, np.ndarray] = {}
    served_lock = threading.Lock()
    sheds = [0]
    before = service.stats.snapshot()

    def client() -> None:
        while True:
            with cursor_lock:
                i = cursor[0]
                if i >= len(trace):
                    return
                cursor[0] = i + 1
            frame = trace[i]
            try:
                response = service.request(frame)
            except AdmissionError:
                with cursor_lock:
                    sheds[0] += 1
                continue
            with served_lock:
                if frame not in served:
                    served[frame] = response.texture

    t0 = time.perf_counter()
    errors = _run_clients(n_clients, client)
    duration = time.perf_counter() - t0
    if errors:
        raise errors[0]

    after = service.stats.snapshot()
    sources = {
        s: after["by_source"].get(s, 0) - before["by_source"].get(s, 0)  # type: ignore[union-attr]
        for s in after["by_source"]  # type: ignore[union-attr]
    }
    bit_identical: Optional[bool] = None
    if verify_fresh is not None:
        frames = sorted(served)[: max(1, verify_sample)]
        bit_identical = all(
            np.array_equal(verify_fresh(f), served[f]) for f in frames
        )
    return ReplayResult(
        n_requests=len(trace),
        n_clients=n_clients,
        duration_s=duration,
        renders=int(after["renders"]) - int(before["renders"]),  # type: ignore[arg-type]
        sources=sources,
        sheds=sheds[0],
        bit_identical=bit_identical,
    )


def replay_uncached(
    render: Callable[[int], np.ndarray],
    trace: Sequence[int],
    n_clients: int = 1,
) -> ReplayResult:
    """Render every trace entry from scratch — the no-cache baseline.

    *render* must be thread-safe or cheap to call concurrently (each
    client calls it directly; nothing is shared, coalesced or cached).
    """
    if n_clients < 1:
        raise ServiceError(f"n_clients must be >= 1, got {n_clients}")
    cursor_lock = threading.Lock()
    cursor = [0]

    def client() -> None:
        while True:
            with cursor_lock:
                i = cursor[0]
                if i >= len(trace):
                    return
                cursor[0] = i + 1
            render(trace[i])

    t0 = time.perf_counter()
    errors = _run_clients(n_clients, client)
    duration = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return ReplayResult(
        n_requests=len(trace),
        n_clients=n_clients,
        duration_s=duration,
        renders=len(trace),
        sources={"render": len(trace)},
    )
