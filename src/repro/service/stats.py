"""Serving metrics.

:class:`ServiceStats` is the one place every layer of the serving stack
reports into: the cache tiers (hit source), the scheduler (coalesces,
queue depth, renders), admission control (sheds, predicted vs actual
latency) and the request path itself (end-to-end latency per source).
``report()`` renders the operator view; ``snapshot()`` returns the same
numbers as a dict for programmatic assertions and the bench harness.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

import numpy as np

#: Response sources, in the order reports print them.
SOURCES = ("memory", "disk", "coalesced", "render")

#: Retained samples per latency/prediction series.  Counters are exact
#: forever; percentiles and prediction means are over the most recent
#: window, keeping a long-running service at O(1) memory.
SAMPLE_WINDOW = 4096


class ServiceStats:
    """Thread-safe counters and latency records for one service."""

    def __init__(self, sample_window: int = SAMPLE_WINDOW) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.sheds = 0
        self.errors = 0
        self.renders = 0
        #: Requests this service's node proxied to a peer that owns the
        #: key (cluster tier; always 0 on a single-process service).
        self.forwards = 0
        self.hits_by_source: Dict[str, int] = {s: 0 for s in SOURCES}
        self._latencies: Dict[str, Deque[float]] = {
            s: deque(maxlen=sample_window) for s in SOURCES
        }
        self._predictions: Deque[Tuple[float, float]] = deque(maxlen=sample_window)
        self._sample_window = sample_window
        #: Optional gauge probe installed by the service (scheduler queue depth).
        self.queue_depth_probe: Optional[Callable[[], int]] = None

    # -- recording (called by the service layers) ------------------------------
    def record_request(self) -> None:
        with self._lock:
            self.requests += 1

    def record_response(self, source: str, latency_s: float) -> None:
        with self._lock:
            self.hits_by_source[source] = self.hits_by_source.get(source, 0) + 1
            if source not in self._latencies:
                self._latencies[source] = deque(maxlen=self._sample_window)
            self._latencies[source].append(float(latency_s))

    def record_render(self, predicted_s: Optional[float], actual_s: float) -> None:
        with self._lock:
            self.renders += 1
            if predicted_s is not None:
                self._predictions.append((float(predicted_s), float(actual_s)))

    def record_shed(self) -> None:
        with self._lock:
            self.sheds += 1

    def record_forward(self) -> None:
        """Count one request routed to a peer node (cluster tier)."""
        with self._lock:
            self.forwards += 1

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    # -- derived metrics ---------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        with self._lock:
            return self.hits_by_source.get("memory", 0) + self.hits_by_source.get("disk", 0)

    def hit_rate(self) -> float:
        """Fraction of requests served from a cache tier (0 when idle)."""
        with self._lock:
            served = sum(self.hits_by_source.values())
            hits = self.hits_by_source.get("memory", 0) + self.hits_by_source.get("disk", 0)
        return hits / served if served else 0.0

    def coalesce_rate(self) -> float:
        """Fraction of requests that piggybacked on an in-flight render."""
        with self._lock:
            served = sum(self.hits_by_source.values())
            coalesced = self.hits_by_source.get("coalesced", 0)
        return coalesced / served if served else 0.0

    def queue_depth(self) -> int:
        probe = self.queue_depth_probe
        return probe() if probe is not None else 0

    def latency_percentiles(
        self, source: Optional[str] = None
    ) -> "dict[str, float]":
        """``{"p50": ..., "p95": ...}`` seconds over one or all sources
        (computed over the most recent :data:`SAMPLE_WINDOW` samples)."""
        with self._lock:
            if source is None:
                values = [v for vs in self._latencies.values() for v in vs]
            else:
                values = list(self._latencies.get(source, ()))
        if not values:
            return {"p50": 0.0, "p95": 0.0}
        arr = np.asarray(values)
        return {
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
        }

    def prediction_accuracy(self) -> "tuple[float, float]":
        """``(mean predicted, mean actual)`` render seconds (0, 0 when none)."""
        with self._lock:
            preds = list(self._predictions)
        if not preds:
            return 0.0, 0.0
        arr = np.asarray(preds)
        return float(arr[:, 0].mean()), float(arr[:, 1].mean())

    # -- reporting ---------------------------------------------------------------
    def snapshot(self) -> "dict[str, object]":
        with self._lock:
            by_source = dict(self.hits_by_source)
            requests = self.requests
            renders = self.renders
            sheds = self.sheds
            errors = self.errors
            forwards = self.forwards
        snap: "dict[str, object]" = {
            "requests": requests,
            "renders": renders,
            "sheds": sheds,
            "errors": errors,
            "forwards": forwards,
            "by_source": by_source,
            "hit_rate": self.hit_rate(),
            "coalesce_rate": self.coalesce_rate(),
            "queue_depth": self.queue_depth(),
            "latency": self.latency_percentiles(),
        }
        predicted, actual = self.prediction_accuracy()
        snap["predicted_render_s"] = predicted
        snap["actual_render_s"] = actual
        return snap

    def report(self) -> str:
        snap = self.snapshot()
        by_source = snap["by_source"]
        lines = [
            f"requests: {snap['requests']} "
            f"(renders {snap['renders']}, sheds {snap['sheds']}, "
            f"errors {snap['errors']}, forwards {snap['forwards']})",
            "served:   "
            + ", ".join(
                f"{s}={by_source.get(s, 0)}"
                for s in (*SOURCES, *sorted(set(by_source) - set(SOURCES)))
            ),
            f"rates:    hit {snap['hit_rate']:.1%}, coalesce {snap['coalesce_rate']:.1%}, "
            f"queue depth {snap['queue_depth']}",
        ]
        lat = snap["latency"]
        lines.append(
            f"latency:  p50 {lat['p50'] * 1e3:.2f} ms, p95 {lat['p95'] * 1e3:.2f} ms"
        )
        if snap["renders"] and snap["actual_render_s"]:
            lines.append(
                f"renders:  predicted {snap['predicted_render_s'] * 1e3:.2f} ms, "
                f"actual {snap['actual_render_s'] * 1e3:.2f} ms (mean)"
            )
        return "\n".join(lines)
