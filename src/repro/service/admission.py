"""Admission control and latency prediction.

The machine model already knows how expensive a texture is — the same
per-unit costs that reproduce Tables 1 and 2 price a request here.
:class:`LatencyPredictor` turns a config + grid shape into a closed-form
cost estimate via :func:`repro.machine.workload.workload_from_config`
and the :class:`~repro.machine.costs.CostModel` helpers, then calibrates
an EWMA scale factor from observed render times (the absolute 1997
constants are decades from this host, but the *structure* — spots,
vertices, pixels — transfers; one scalar bridges the hardware gap).

:class:`AdmissionController` uses the prediction to shed load: when the
predicted wait (queued renders ahead plus this one) exceeds the latency
budget, or the queue is full, the request is rejected with
:class:`~repro.errors.AdmissionError` instead of silently degrading
every client behind it.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Tuple

from repro.core.config import SpotNoiseConfig
from repro.errors import AdmissionError, ServiceError
from repro.fields.vectorfield import VectorField2D
from repro.machine.costs import CostModel
from repro.machine.workload import SpotWorkload, workload_from_config


class LatencyPredictor:
    """Predicts per-render seconds and learns a host calibration online.

    The predictor remembers the last grid shape a caller priced with
    (:meth:`predict`) and reuses it when :meth:`observe` is called
    without one: predicting with the real grid but folding observations
    priced on the documented ``(64, 64)`` fallback would corrupt the
    EWMA scale with a constant bias — every observation's ratio would
    compare seconds measured on the real workload against a raw
    estimate of a different, usually much smaller one.
    """

    def __init__(self, costs: Optional[CostModel] = None, alpha: float = 0.3):
        if not (0.0 < alpha <= 1.0):
            raise ServiceError(f"alpha must be in (0, 1], got {alpha}")
        self.costs = costs or CostModel.onyx2()
        self.alpha = alpha
        self._scale: Optional[float] = None
        self._grid_shape: Optional[Tuple[int, int]] = None
        self._lock = threading.Lock()

    def _raw_estimate(self, workload: SpotWorkload) -> float:
        """Uncalibrated seconds: serial sum of the cost-model stages."""
        c = self.costs
        return (
            c.shape_time(workload.n_spots, workload.total_vertices)
            + c.feed_time(workload.total_vertices)
            + c.pipe_time(workload.total_vertices, workload.total_pixels)
            + c.blend_time(workload.texture_pixels)
        )

    def predict(
        self,
        config: SpotNoiseConfig,
        field: Optional[VectorField2D] = None,
        grid_shape: Optional[Tuple[int, int]] = None,
    ) -> float:
        """Predicted render seconds for *config* on this host.

        Prefers an explicit *grid_shape* (the service caches it from the
        first loaded field) so prediction never forces a data load.  The
        shape actually priced is cached for :meth:`observe`.
        """
        workload = workload_from_config(config, field, grid_shape=grid_shape)
        raw = self._raw_estimate(workload)
        with self._lock:
            self._grid_shape = workload.grid_shape
            scale = self._scale
        return raw * scale if scale is not None else raw

    def observe(self, config: SpotNoiseConfig, actual_s: float,
                grid_shape: Optional[Tuple[int, int]] = None) -> None:
        """Fold one observed render time into the calibration scale.

        *grid_shape* should be the shape the render actually ran on (the
        service threads its cached shape through); when omitted, the
        shape cached by the last :meth:`predict` is used, so an
        observation is always priced against the same workload its
        prediction was — never silently against the (64, 64) fallback
        while predictions used the real grid.
        """
        if actual_s <= 0:
            return
        if grid_shape is None:
            with self._lock:
                grid_shape = self._grid_shape
        raw = self._raw_estimate(
            workload_from_config(config, grid_shape=grid_shape)
        )
        if raw <= 0:
            return
        ratio = actual_s / raw
        with self._lock:
            if self._scale is None:
                self._scale = ratio
            else:
                self._scale = (1.0 - self.alpha) * self._scale + self.alpha * ratio

    @property
    def calibrated(self) -> bool:
        with self._lock:
            return self._scale is not None

    @property
    def scale(self) -> Optional[float]:
        """The learned host calibration factor (``None`` until observed).

        This is the multiplier the decomposition planner applies to its
        render-work terms — the bridge between online calibration and
        re-planning on drift.
        """
        with self._lock:
            return self._scale


class TokenBucket:
    """Thread-safe token bucket: sustained *rate* with a *burst* cap.

    The rate-limiting half of admission control: where
    :class:`AdmissionController` sheds work whose predicted wait blows a
    latency budget, a bucket sheds work that exceeds an allotted
    *throughput* — the per-tenant quota layer of the cluster tier
    (:mod:`repro.cluster.quotas`) keeps one bucket per tenant.

    Tokens refill continuously at *rate* per second up to *burst*; an
    acquire that finds no whole token fails.  The clock is injectable so
    quota tests are deterministic instead of sleep-based.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Optional[Callable[[], float]] = None):
        if rate <= 0:
            raise ServiceError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ServiceError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._tokens = float(burst)  #: guarded-by: _lock
        self._last = self._clock()  #: guarded-by: _lock

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take *n* tokens if available; ``False`` sheds the request."""
        now = self._clock()
        with self._lock:
            elapsed = max(0.0, now - self._last)
            self._last = now
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            if self._tokens < n:
                return False
            self._tokens -= n
            return True

    @property
    def tokens(self) -> float:
        """Tokens currently available (refilled to now; observability)."""
        now = self._clock()
        with self._lock:
            elapsed = max(0.0, now - self._last)
            self._last = now
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            return self._tokens


class AdmissionController:
    """Sheds renders whose predicted wait would blow the latency budget.

    Parameters
    ----------
    latency_budget_s:
        Maximum acceptable predicted wait for a *new* render, counting
        the renders already queued ahead of it.  ``None`` disables the
        latency criterion.
    max_queue:
        Hard cap on the queue *backlog* — renders waiting for a worker,
        not the ones already executing (those are nearly done and no
        longer price the new request's wait).  ``None`` disables it.

    Cache hits and coalesced joins are never shed — they are (nearly)
    free; only work that would add a render to the queue is policed.
    """

    def __init__(
        self,
        latency_budget_s: Optional[float] = None,
        max_queue: Optional[int] = None,
    ):
        if latency_budget_s is not None and latency_budget_s <= 0:
            raise ServiceError("latency_budget_s must be positive (or None)")
        if max_queue is not None and max_queue < 1:
            raise ServiceError("max_queue must be >= 1 (or None)")
        self.latency_budget_s = latency_budget_s
        self.max_queue = max_queue

    def admit(self, predicted_s: Optional[float], queue_depth: int) -> None:
        """Raise :class:`AdmissionError` if the render must be shed.

        *queue_depth* is the number of renders queued **ahead** of this
        one — the scheduler's backlog, excluding flights a worker is
        already executing (:meth:`RequestScheduler.backlog`).
        """
        if self.max_queue is not None and queue_depth >= self.max_queue:
            raise AdmissionError(
                f"render queue full ({queue_depth} >= {self.max_queue})"
            )
        if (
            self.latency_budget_s is not None
            and predicted_s is not None
            and predicted_s * (queue_depth + 1) > self.latency_budget_s
        ):
            raise AdmissionError(
                f"predicted wait {predicted_s * (queue_depth + 1) * 1e3:.1f} ms "
                f"(depth {queue_depth}) exceeds the "
                f"{self.latency_budget_s * 1e3:.1f} ms budget"
            )
