"""repro.service — request-coalescing, cache-backed texture serving.

The paper makes one texture fast; this subsystem makes *traffic* fast.
Real visualization load (many users scrubbing the same DNS slices,
dashboards re-pulling the same smog frames) is dominated by repeated and
concurrent-duplicate requests, so the biggest multiplier after the
renderer itself is not rendering at all:

* :mod:`~repro.service.keys` — content-addressed request keys (field
  digest + config fingerprint), so identical work is identical bytes;
* :mod:`~repro.service.cache` — in-memory LRU under a byte budget over
  an atomic content-addressed disk tier;
* :mod:`~repro.service.scheduler` — single-flight coalescing of
  concurrent duplicates over a render worker pool;
* :mod:`~repro.service.admission` — cost-model latency prediction and
  load shedding;
* :mod:`~repro.service.stats` — hit rate, coalesce rate, queue depth,
  latency percentiles;
* :mod:`~repro.service.server` — :class:`TextureService`, the front
  end binding a field source to one config;
* :mod:`~repro.service.trace` — uniform/Zipf/scrubbing request traces
  and the replay harness behind ``repro.cli serve-bench``.

Every future scaling layer (sharding, multi-process serving, an HTTP
front end) plugs in above :class:`TextureService`.  Sequence traffic —
temporally-coherent animation frames, which depend on every field
before them — is served by the sibling subsystem :mod:`repro.anim`,
which builds on this module's keys, caches and single-flight scheduler
(see :meth:`TextureService.animation_service`).
"""

from repro.service.admission import AdmissionController, LatencyPredictor, TokenBucket
from repro.service.cache import (
    DiskBlobStore,
    DiskTextureCache,
    LRUTextureCache,
    TieredTextureCache,
)
from repro.service.keys import (
    RequestKey,
    SequenceKey,
    TileSpec,
    chain_digest,
    request_key,
    ring_hash,
)
from repro.service.scheduler import RenderTicket, RequestScheduler
from repro.service.server import FrameRenderer, TextureResponse, TextureService
from repro.service.stats import ServiceStats
from repro.service.trace import (
    ReplayResult,
    replay,
    replay_uncached,
    scrubbing_trace,
    uniform_trace,
    zipf_trace,
)

__all__ = [
    "AdmissionController",
    "LatencyPredictor",
    "TokenBucket",
    "DiskBlobStore",
    "DiskTextureCache",
    "LRUTextureCache",
    "TieredTextureCache",
    "RequestKey",
    "SequenceKey",
    "TileSpec",
    "chain_digest",
    "request_key",
    "ring_hash",
    "RenderTicket",
    "RequestScheduler",
    "FrameRenderer",
    "TextureResponse",
    "TextureService",
    "ServiceStats",
    "ReplayResult",
    "replay",
    "replay_uncached",
    "scrubbing_trace",
    "uniform_trace",
    "zipf_trace",
]
