"""Request scheduler: single-flight coalescing over a worker pool.

Real serving traffic is dominated by *concurrent duplicates* — many
clients scrubbing the same time slice at once.  The scheduler's job is
to make N simultaneous requests for the same key cost exactly one
render: the first request creates an in-flight ticket and enqueues the
work; everyone else who arrives before it finishes attaches to the same
ticket (a "coalesced" response).  Distinct keys queue behind a pool of
worker threads — each worker drives a full divide-and-conquer render
(which itself fans out over :mod:`repro.parallel.backends`), so the pool
size trades request concurrency against per-render parallelism.

Admission runs inside the submit lock, and only for requests that would
*create* a render: joining an existing flight is free and is never shed.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError


class RenderTicket:
    """Handle on one in-flight render; many requests may wait on it.

    The payload is opaque to the scheduler: texture serving stores a
    numpy array, the sequence layer (:mod:`repro.anim.scheduler`) runs
    whole streaming jobs through the same pool and ignores the ticket
    result entirely (frames flow through the flight's own buffer).
    """

    def __init__(self, key: str):
        self.key = key
        self.waiters = 1
        self._done = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def _finish(self, result: Any, error: Optional[BaseException]) -> None:
        self._result = result
        self._error = error
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the render completes; re-raises its exception."""
        if not self._done.wait(timeout):
            raise ServiceError(f"timed out waiting for render {self.key[:12]}...")
        if self._error is not None:
            raise self._error
        return self._result


_SENTINEL = object()


class RequestScheduler:
    """Thread-safe queue of renders with single-flight coalescing.

    Parameters
    ----------
    n_workers:
        Worker threads consuming the render queue.
    admit:
        Optional callback ``admit(backlog)`` invoked (under the
        scheduler lock) before a *new* flight is created; raising
        :class:`~repro.errors.AdmissionError` rejects the request.  The
        argument is the true queue backlog — flights waiting for a
        worker, **excluding** the ones already executing: an executing
        render is nearly done and does not queue ahead of the new one,
        so counting it would make budget-based admission over-shed.
    """

    def __init__(
        self,
        n_workers: int = 2,
        admit: Optional[Callable[[int], None]] = None,
        name: str = "texture-service",
    ):
        if n_workers < 1:
            raise ServiceError(f"n_workers must be >= 1, got {n_workers}")
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._inflight: Dict[str, RenderTicket] = {}  #: guarded-by: _lock
        self._lock = threading.Lock()
        self._admit = admit
        self._closed = False  #: guarded-by: _lock
        self._executing = 0  #: guarded-by: _lock
        self.coalesced = 0
        self.dispatched = 0
        self._workers = [
            threading.Thread(target=self._work, name=f"{name}-worker-{i}", daemon=True)
            for i in range(n_workers)
        ]
        for w in self._workers:
            w.start()

    # -- submission ---------------------------------------------------------------
    def submit(
        self, key: str, render: Callable[[], Any]
    ) -> Tuple[RenderTicket, bool]:
        """Coalesce onto an in-flight render of *key* or enqueue a new one.

        Returns ``(ticket, created)``; *created* is False when the
        request piggybacked on an existing flight.  Admission control
        (and hence :class:`~repro.errors.AdmissionError`) applies only
        when a new flight would be created.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("scheduler is closed")
            ticket = self._inflight.get(key)
            if ticket is not None:
                ticket.waiters += 1
                self.coalesced += 1
                return ticket, False
            if self._admit is not None:
                self._admit(len(self._inflight) - self._executing)
            ticket = RenderTicket(key)
            self._inflight[key] = ticket
            self.dispatched += 1
            self._queue.put((key, render, ticket))
        return ticket, True

    def submit_many(
        self, items: Sequence[Tuple[str, Callable[[], Any]]]
    ) -> List[Tuple[RenderTicket, bool]]:
        """Batch submit; duplicates within the batch coalesce too."""
        return [self.submit(key, render) for key, render in items]

    # -- introspection ---------------------------------------------------------
    def queue_depth(self) -> int:
        """Total flights in the system: queued **plus** executing.

        This is the observability number (what the stats probe reports);
        admission control instead receives :meth:`backlog`, which
        excludes executing flights.
        """
        with self._lock:
            return len(self._inflight)

    def backlog(self) -> int:
        """Renders queued and still waiting for a worker (excludes the
        ones a worker is already executing) — the count that prices a
        new request's wait."""
        with self._lock:
            return len(self._inflight) - self._executing

    # -- worker loop ---------------------------------------------------------------
    def _work(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            key, render, ticket = item  # type: ignore[misc]
            result: Any = None
            error: Optional[BaseException] = None
            with self._lock:
                self._executing += 1
            try:
                result = render()
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
                error = exc
            # Retire the flight *before* waking waiters: a request that
            # arrives after this point starts fresh (and will usually hit
            # the cache the render just populated).
            with self._lock:
                self._executing -= 1
                self._inflight.pop(key, None)
            ticket._finish(result, error)

    def close(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        if wait:
            for w in self._workers:
                w.join()

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
