"""Request scheduler: single-flight coalescing on the async spine.

Real serving traffic is dominated by *concurrent duplicates* — many
clients scrubbing the same time slice at once.  The scheduler's job is
to make N simultaneous requests for the same key cost exactly one
render: the first request registers an in-flight
:class:`~repro.runtime.singleflight.Flight` and dispatches the work;
everyone else who arrives before it finishes attaches to the same
flight (a "coalesced" response).

The coordination lives on the process
:class:`~repro.runtime.loop.RuntimeLoop`: the in-flight map is
loop-confined state (:class:`~repro.runtime.singleflight.AsyncSingleFlight`
— no scheduler lock at all), renders execute on a capped
:class:`~repro.runtime.executor.RenderExecutor` pool, and admission
decisions run as loop callbacks.  The public API is unchanged — blocking
``submit``/``wait``/``close`` are thin ``run_coroutine_threadsafe``
shims — so callers (and the perf floors) see the exact pre-spine
semantics.

Admission runs in the submit callback, and only for requests that would
*create* a render: joining an existing flight is free and is never shed.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.runtime.executor import RenderExecutor
from repro.runtime.loop import RuntimeLoop, get_runtime_loop
from repro.runtime.singleflight import AsyncSingleFlight, Flight


class RenderTicket:
    """Blocking handle on one in-flight render; many requests wait on it.

    The ticket is the thread-world face of a runtime
    :class:`~repro.runtime.singleflight.Flight`: waiters block on an
    event here, while the live-waiter count stays on the flight
    (loop-confined, adjusted only by loop callbacks).  The payload is
    opaque to the scheduler: texture serving stores a numpy array, the
    sequence layer (:mod:`repro.anim.scheduler`) runs whole streaming
    jobs through the same pool and ignores the ticket result entirely
    (frames flow through the stream's own buffer).
    """

    def __init__(self, key: str, scheduler: "RequestScheduler", flight: Flight):
        self.key = key
        self._scheduler = scheduler
        self._flight = flight
        self._done = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    @property
    def waiters(self) -> int:
        """Requests currently attached to this render.

        A snapshot read of loop-confined state — exact whenever the
        loop has drained the joins/detaches that precede the read.
        """
        return self._flight.waiters

    def _finish(self, result: Any, error: Optional[BaseException]) -> None:
        self._result = result
        self._error = error
        self._done.set()

    def detach(self) -> None:
        """Drop this waiter from the flight's accounting."""
        self._scheduler._detach(self._flight)

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the render completes; re-raises its exception."""
        if not self._done.wait(timeout):
            # This waiter is giving up: without the detach the flight's
            # waiter count never drops, and shed/late-cancellation
            # accounting over-counts for the rest of the flight's life.
            self.detach()
            raise ServiceError(f"timed out waiting for render {self.key[:12]}...")
        if self._error is not None:
            raise self._error
        return self._result


class RequestScheduler:
    """Single-flight render scheduler shimmed over the runtime loop.

    Parameters
    ----------
    n_workers:
        Size of the render executor pool (distinct-render concurrency).
    admit:
        Optional callback ``admit(backlog)`` invoked (as a loop
        callback) before a *new* flight is created; raising
        :class:`~repro.errors.AdmissionError` rejects the request.  The
        argument is the true queue backlog — flights waiting for a
        worker, **excluding** the ones already executing: an executing
        render is nearly done and does not queue ahead of the new one,
        so counting it would make budget-based admission over-shed.
    runtime:
        The spine to coordinate on; defaults to the process singleton.
    """

    def __init__(
        self,
        n_workers: int = 2,
        admit: Optional[Callable[[int], None]] = None,
        name: str = "texture-service",
        runtime: Optional[RuntimeLoop] = None,
    ):
        if n_workers < 1:
            raise ServiceError(f"n_workers must be >= 1, got {n_workers}")
        self._runtime = runtime or get_runtime_loop()
        self._executor = RenderExecutor(n_workers, name=name)
        self._flights = AsyncSingleFlight()
        self._tickets: "dict[str, RenderTicket]" = {}  # loop-confined
        self._drives: "set[asyncio.Task]" = set()  # loop-confined
        self._admit = admit
        self._closed = False  # loop-confined (written only in loop callbacks)

    @property
    def runtime(self) -> RuntimeLoop:
        return self._runtime

    @property
    def coalesced(self) -> int:
        return self._flights.coalesced

    @property
    def dispatched(self) -> int:
        return self._flights.dispatched

    # -- submission ------------------------------------------------------------
    def submit(
        self, key: str, render: Callable[[], Any]
    ) -> Tuple[RenderTicket, bool]:
        """Coalesce onto an in-flight render of *key* or dispatch a new one.

        Returns ``(ticket, created)``; *created* is False when the
        request piggybacked on an existing flight.  Admission control
        (and hence :class:`~repro.errors.AdmissionError`) applies only
        when a new flight would be created.
        """
        return self._runtime.run(self._submit(key, render))

    async def _submit(
        self, key: str, render: Callable[[], Any]
    ) -> Tuple[RenderTicket, bool]:
        if self._closed:
            raise ServiceError("scheduler is closed")
        flight = self._flights.get(key)
        if flight is not None:
            self._flights.join(flight)
            return self._tickets[key], False
        if self._admit is not None:
            self._admit(len(self._flights) - self._executor.active)
        flight = self._flights.begin(key)
        ticket = RenderTicket(key, self, flight)
        self._tickets[key] = ticket
        task = asyncio.get_running_loop().create_task(
            self._drive(key, ticket, flight, render)
        )
        self._drives.add(task)
        task.add_done_callback(self._drives.discard)
        return ticket, True

    async def _drive(
        self,
        key: str,
        ticket: RenderTicket,
        flight: Flight,
        render: Callable[[], Any],
    ) -> None:
        result: Any = None
        error: Optional[BaseException] = None
        try:
            result = await self._executor.run(render)
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
            error = exc
        # Retire the flight *before* waking waiters: a request that
        # arrives after this point starts fresh (and will usually hit
        # the cache the render just populated).
        self._tickets.pop(key, None)
        self._flights.settle(flight, result, error)
        ticket._finish(result, error)

    def submit_many(
        self, items: Sequence[Tuple[str, Callable[[], Any]]]
    ) -> List[Tuple[RenderTicket, bool]]:
        """Batch submit; duplicates within the batch coalesce too."""
        return [self.submit(key, render) for key, render in items]

    def _detach(self, flight: Flight) -> None:
        # Waiter accounting is loop-confined; a blocking waiter that
        # times out hops back onto the loop to decrement it.
        self._runtime.call_soon(self._flights.detach, flight)

    # -- introspection ---------------------------------------------------------
    def queue_depth(self) -> int:
        """Total flights in the system: queued **plus** executing.

        This is the observability number (what the stats probe reports);
        admission control instead receives :meth:`backlog`, which
        excludes executing flights.  A snapshot read of loop-confined
        state — no lock, exact once in-flight callbacks drain.
        """
        return len(self._flights)

    def backlog(self) -> int:
        """Renders dispatched and still waiting for a pool worker
        (excludes the ones already executing) — the count that prices a
        new request's wait."""
        return len(self._flights) - self._executor.active

    # -- lifecycle -------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Refuse new submissions; optionally drain in-flight renders."""
        drives = self._runtime.run(self._close())
        if wait and drives:
            self._runtime.run(_drain(drives))
        self._executor.shutdown(wait=wait)

    async def _close(self) -> "list[asyncio.Task]":
        if self._closed:
            return []
        self._closed = True
        return list(self._drives)

    def __enter__(self) -> "RequestScheduler":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


async def _drain(tasks: "list[asyncio.Task]") -> None:
    await asyncio.gather(*tasks, return_exceptions=True)
