"""Versioned cluster manifests: publish once, sync by digest.

A node that has rendered a sequence publishes *what it has* — a
:class:`ClusterManifest` listing every raw chunk in its blob store
(delta-transport chunks, :mod:`repro.anim.delta`, plus any other
``put_bytes`` payloads) and the sequence manifests they back.  Peers and
clients then sync by digest: fetch only the chunks they are missing
(:func:`sync_manifest`), verify every fetched payload against the
published SHA-256 before storing it, and dedup against what they already
hold at chunk granularity — two sequences sharing delta chunks transfer
the shared chunks once.

Two digests per chunk, deliberately:

* ``digest`` — the *store key*, what the owning node addresses the
  chunk by.  For delta chunks this is
  :func:`~repro.service.keys.chunk_digest` of the stored-form bytes
  (post-shuffle, pre-compression), which is **not** a hash of the
  compressed payload that actually ships;
* ``payload_sha256`` — the hash of the shipped bytes themselves, so a
  syncing peer can reject corruption without knowing how to decode the
  payload.  Verification is re-hash-on-arrival, never trust-the-wire.

The manifest itself is content-addressed (:attr:`ClusterManifest.digest`
over its canonical JSON), so "has anything changed?" between peers is a
single string comparison.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.errors import ServiceError

#: Format tag + schema version embedded in every serialised manifest.
MANIFEST_KIND = "repro-cluster-manifest"
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ChunkEntry:
    """One published chunk: store key, payload hash, size."""

    digest: str
    payload_sha256: str
    nbytes: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "digest": self.digest,
            "payload_sha256": self.payload_sha256,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChunkEntry":
        try:
            return cls(
                digest=str(data["digest"]),
                payload_sha256=str(data["payload_sha256"]),
                nbytes=int(data["nbytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed chunk entry: {exc}") from exc


@dataclass(frozen=True)
class ClusterManifest:
    """What one node has: a chunk table plus the sequences it backs.

    ``sequences`` carries the animation layer's sequence manifests
    (plain JSON dicts, see :meth:`repro.anim.sequence.RenderedSequence`
    manifests) verbatim — this layer addresses their *chunks*; what the
    chunks mean is the anim layer's business.
    """

    node_id: str
    chunks: Tuple[ChunkEntry, ...]
    sequences: Tuple[Dict[str, Any], ...] = ()

    @property
    def digest(self) -> str:
        """Content address of the manifest (version + every field)."""
        payload = {
            "kind": MANIFEST_KIND,
            "version": MANIFEST_VERSION,
            "node_id": self.node_id,
            "chunks": [entry.to_dict() for entry in self.chunks],
            "sequences": list(self.sequences),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": MANIFEST_KIND,
            "version": MANIFEST_VERSION,
            "node_id": self.node_id,
            "chunks": [entry.to_dict() for entry in self.chunks],
            "sequences": list(self.sequences),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClusterManifest":
        if data.get("kind") != MANIFEST_KIND:
            raise ServiceError(
                f"not a cluster manifest (kind={data.get('kind')!r})"
            )
        if data.get("version") != MANIFEST_VERSION:
            raise ServiceError(
                f"unsupported manifest version {data.get('version')!r} "
                f"(this build reads {MANIFEST_VERSION})"
            )
        chunks = tuple(
            ChunkEntry.from_dict(entry) for entry in data.get("chunks", [])
        )
        sequences = tuple(dict(s) for s in data.get("sequences", []))
        return cls(
            node_id=str(data.get("node_id", "")),
            chunks=chunks,
            sequences=sequences,
        )

    def chunk_map(self) -> Dict[str, ChunkEntry]:
        return {entry.digest: entry for entry in self.chunks}


def publish_store(
    store,
    node_id: str,
    sequences: Iterable[Dict[str, Any]] = (),
) -> ClusterManifest:
    """Snapshot *store*'s raw blobs into a :class:`ClusterManifest`.

    *store* is anything with the blob face of
    :class:`~repro.service.cache.DiskBlobStore`
    (``iter_blob_digests``/``get_bytes``).  A blob evicted between
    listing and read is skipped — the manifest only ever advertises
    bytes the publisher actually held and hashed.
    """
    entries = []
    for digest in store.iter_blob_digests():
        payload = store.get_bytes(digest)
        if payload is None:
            continue  # evicted mid-snapshot; advertise only what we read
        entries.append(
            ChunkEntry(
                digest=digest,
                payload_sha256=hashlib.sha256(payload).hexdigest(),
                nbytes=len(payload),
            )
        )
    return ClusterManifest(
        node_id=node_id,
        chunks=tuple(entries),
        sequences=tuple(dict(s) for s in sequences),
    )


@dataclass(frozen=True)
class SyncReport:
    """Outcome of one :func:`sync_manifest` pass."""

    fetched: int
    deduped: int
    corrupt: int
    missing: int
    bytes_fetched: int

    @property
    def complete(self) -> bool:
        """Every advertised chunk is now present and verified locally."""
        return self.corrupt == 0 and self.missing == 0


def sync_manifest(
    manifest: ClusterManifest,
    fetch: Callable[[str], Optional[bytes]],
    dest,
) -> SyncReport:
    """Bring *dest* up to date with *manifest*, fetching missing chunks.

    *fetch* maps a chunk digest to its payload bytes (``None`` for a
    miss) — typically :meth:`repro.cluster.peer.PeerClient.fetch_chunk`.
    Every fetched payload is re-hashed against the manifest's
    ``payload_sha256`` before it is stored; a mismatch counts as
    ``corrupt`` and **nothing** is written, so a lying or damaged source
    can cost a retry but never poison the local store.  Chunks already
    present locally are deduped by store key without any transfer.
    """
    fetched = deduped = corrupt = missing = bytes_fetched = 0
    for entry in manifest.chunks:
        if dest.contains_bytes(entry.digest):
            deduped += 1
            continue
        payload = fetch(entry.digest)
        if payload is None:
            missing += 1
            continue
        if hashlib.sha256(payload).hexdigest() != entry.payload_sha256:
            corrupt += 1
            continue
        dest.put_bytes(entry.digest, payload)
        fetched += 1
        bytes_fetched += len(payload)
    return SyncReport(
        fetched=fetched,
        deduped=deduped,
        corrupt=corrupt,
        missing=missing,
        bytes_fetched=bytes_fetched,
    )
