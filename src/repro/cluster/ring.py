"""Consistent-hash ring: which node owns which request key.

The fleet's single-flight guarantee is routing, not consensus: every
node maps a request's content-addressed digest
(:meth:`~repro.service.server.TextureService.render_digest`, a
:class:`~repro.service.keys.RequestKey`/:class:`~repro.service.keys.SequenceKey`
digest) to the *same* owner, so concurrent duplicates landing anywhere
in the fleet converge on one node — whose local
:class:`~repro.service.scheduler.RequestScheduler` then coalesces them
onto one render.  A distinct frame is rendered once globally because it
is rendered once locally on exactly one node.

Classic consistent hashing with virtual nodes: each node contributes
``replicas`` points at :func:`~repro.service.keys.ring_hash` positions
of ``"<node_id>#<i>"``; a key is owned by the first point clockwise of
its own position.  Two properties the cluster tier leans on, both
covered by property tests:

* **stability** — positions are SHA-256-derived, never Python's salted
  ``hash()``, so ownership is identical in every process and across
  restarts for the same node set;
* **minimal remapping** — removing a node moves only the keys it owned
  (they fall through to the next point clockwise); adding one steals
  only the keys it now owns.  A peer failure therefore rebalances
  ~1/N of the key space instead of reshuffling every cache.

Thread-safe: membership changes swap an immutable points list, reads
never block on a membership write in progress.
"""

from __future__ import annotations

import bisect
import threading
from typing import List, Tuple

from repro.errors import ServiceError
from repro.service.keys import ring_hash

#: Virtual points per node.  Enough to keep the spread of a small fleet
#: within a few tens of percent of uniform; cheap to rebuild on change.
DEFAULT_REPLICAS = 64


class HashRing:
    """Consistent-hash ring over node identifiers.

    Parameters
    ----------
    nodes:
        Initial node identifiers.
    replicas:
        Virtual points per node (spread/rebuild-cost trade-off).
    """

    def __init__(self, nodes: "tuple[str, ...] | list[str]" = (), replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._lock = threading.Lock()
        self._nodes: "set[str]" = set()  #: guarded-by: _lock
        # One immutable (positions, owners) snapshot, swapped whole on
        # membership change so owner() reads it without taking the lock.
        self._ring: "Tuple[Tuple[int, ...], Tuple[str, ...]]" = ((), ())
        for node in nodes:
            self.add(node)

    def _rebuild_locked(self) -> None:
        points: "List[Tuple[int, str]]" = []
        for node in self._nodes:
            for i in range(self.replicas):
                points.append((ring_hash(f"{node}#{i}"), node))
        # Ties (astronomically unlikely 64-bit collisions) resolve by
        # node id so every process sorts identically.
        points.sort()
        self._ring = (
            tuple(p for p, _ in points),
            tuple(n for _, n in points),
        )

    def add(self, node_id: str) -> bool:
        """Add *node_id*; ``True`` when it was not already a member."""
        if not node_id:
            raise ServiceError("node_id must be non-empty")
        with self._lock:
            if node_id in self._nodes:
                return False
            self._nodes.add(node_id)
            self._rebuild_locked()
            return True

    def discard(self, node_id: str) -> bool:
        """Remove *node_id*; ``True`` when it was a member."""
        with self._lock:
            if node_id not in self._nodes:
                return False
            self._nodes.discard(node_id)
            self._rebuild_locked()
            return True

    def __contains__(self, node_id: str) -> bool:
        with self._lock:
            return node_id in self._nodes

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    def nodes(self) -> "set[str]":
        with self._lock:
            return set(self._nodes)

    def owner(self, key_digest: str) -> str:
        """The node owning *key_digest* (first point clockwise).

        Raises :class:`~repro.errors.ServiceError` on an empty ring —
        the caller (a node that just lost its last peer) serves locally
        instead.
        """
        positions, owners = self._ring
        if not owners:
            raise ServiceError("hash ring is empty (no live nodes)")
        position = ring_hash(key_digest)
        # First point strictly clockwise of the key's position, wrapping
        # past the top of the ring.
        i = bisect.bisect_right(positions, position) % len(owners)
        return owners[i]

    def spread(self, key_digests: "list[str]") -> "dict[str, int]":
        """Owned-key counts per node over *key_digests* (observability)."""
        counts: "dict[str, int]" = {node: 0 for node in self.nodes()}
        for digest in key_digests:
            counts[self.owner(digest)] += 1
        return counts
