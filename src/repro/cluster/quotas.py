"""Per-tenant quotas for the cluster front end.

Admission control (:mod:`repro.service.admission`) protects the *node*:
it sheds work whose predicted wait blows the latency budget regardless
of who asked.  Quotas protect *tenants from each other*: one scrubbing
dashboard hammering the fleet must not starve everyone else, so each
tenant draws from its own :class:`~repro.service.admission.TokenBucket`
and is shed with :class:`~repro.errors.AdmissionError` once it runs dry
— the same error clients already handle for latency shedding, so the
retry story is unchanged.

Quota is charged once, at the node the request *entered* on; proxied
hops between peers are marked ``direct`` and never re-charged, otherwise
a tenant's effective rate would depend on how often the ring routed it
off-node.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.errors import AdmissionError, ServiceError
from repro.service.admission import TokenBucket


class TenantQuotas:
    """Token-bucket rate limits keyed by tenant id.

    Parameters
    ----------
    rate:
        Sustained requests/second granted to each tenant.
    burst:
        Bucket capacity — how far a tenant may briefly exceed *rate*.
    clock:
        Injectable monotonic clock (tests advance it by hand instead of
        sleeping).
    """

    def __init__(self, rate: float, burst: float,
                 clock: Optional[Callable[[], float]] = None):
        if rate <= 0:
            raise ServiceError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ServiceError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}  #: guarded-by: _lock
        self.shed = 0  #: guarded-by: _lock

    def _bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def charge(self, tenant: str) -> None:
        """Take one token for *tenant*; raise
        :class:`~repro.errors.AdmissionError` when the quota is spent."""
        if not tenant:
            raise ServiceError("tenant must be non-empty")
        if not self._bucket(tenant).try_acquire():
            with self._lock:
                self.shed += 1
            raise AdmissionError(
                f"tenant {tenant!r} over quota "
                f"({self.rate:g}/s sustained, burst {self.burst:g})"
            )

    def tokens(self, tenant: str) -> float:
        """Tokens *tenant* has available right now (observability)."""
        return self._bucket(tenant).tokens

    def snapshot(self) -> "Dict[str, float]":
        """Current token balance per known tenant."""
        with self._lock:
            tenants = list(self._buckets)
        return {tenant: self.tokens(tenant) for tenant in tenants}
