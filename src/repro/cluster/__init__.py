"""repro.cluster — the multi-node serving tier.

One :class:`~repro.service.server.TextureService` makes one machine's
traffic cheap; this subsystem spreads that over a fleet without giving
up the property the whole stack is built on: a distinct request renders
exactly once.  The pieces, bottom to top:

* :mod:`~repro.cluster.wire` — length-prefixed framed protocol with a
  SHA-256 over every frame, so corruption is a retry, never wrong
  bytes;
* :mod:`~repro.cluster.ring` — consistent-hash ring over
  content-addressed request digests: every node maps a digest to the
  same owner, so fleet-wide duplicates converge on one node whose local
  scheduler coalesces them (global single-flight = routing + local
  single-flight);
* :mod:`~repro.cluster.peer` — pooled, retrying client; transport
  faults back off and resurface as :class:`PeerUnavailable` for the
  router to act on;
* :mod:`~repro.cluster.node` — the socket front end binding a service
  to the ring: serve what you own, proxy what you don't, drop dead
  owners and re-route, degrade to local rendering before erroring;
* :mod:`~repro.cluster.manifest` — versioned publish/sync of the blob
  tier by digest, chunk-dedup'd, re-hashed on arrival;
* :mod:`~repro.cluster.quotas` — per-tenant token buckets charged at
  the entry node;
* :mod:`~repro.cluster.fleet` — an in-process N-node fleet on real
  sockets, the substrate of ``tests/cluster`` and
  ``repro.cli cluster-bench``.
"""

from repro.cluster.fleet import LocalFleet, analytic_source
from repro.cluster.manifest import (
    ChunkEntry,
    ClusterManifest,
    SyncReport,
    publish_store,
    sync_manifest,
)
from repro.cluster.node import ClusterNode
from repro.cluster.peer import PeerClient, PeerUnavailable
from repro.cluster.quotas import TenantQuotas
from repro.cluster.ring import HashRing
from repro.cluster.wire import WireClosed, WireError

__all__ = [
    "LocalFleet",
    "analytic_source",
    "ChunkEntry",
    "ClusterManifest",
    "SyncReport",
    "publish_store",
    "sync_manifest",
    "ClusterNode",
    "PeerClient",
    "PeerUnavailable",
    "TenantQuotas",
    "HashRing",
    "WireClosed",
    "WireError",
]
