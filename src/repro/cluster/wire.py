"""Length-prefixed wire protocol for the cluster tier.

One frame per message, over any stream socket:

.. code-block:: text

    magic(4) | kind(1) | header_len(4) | body_len(8)
    | header (UTF-8 JSON) | body (raw bytes) | sha256(header || body)

Everything is big-endian and fixed at :data:`VERSION` by the magic
bytes.  The trailing SHA-256 covers header and body together, so a
flipped bit anywhere in a frame — a fault-injection test, a broken
proxy, a truncated stream — surfaces as :class:`WireError` at the
receiver, never as wrong bytes handed to a cache or a client.  That is
the same contract the delta transport's decoder gives
(:class:`~repro.anim.delta.DeltaDecoder`): corruption means *miss and
retry*, not silent poison.

Texture payloads travel as raw C-order array bytes with shape/dtype in
the header (:func:`encode_texture`/:func:`decode_texture`) so a served
response is bit-identical to the owner node's local answer.

The module is transport-only: no routing, no sockets of its own — nodes
(:mod:`repro.cluster.node`) and peer clients (:mod:`repro.cluster.peer`)
call :func:`send_message`/:func:`recv_message` on sockets they manage,
or the asyncio-stream twins
:func:`send_message_async`/:func:`recv_message_async` on
``StreamReader``/``StreamWriter`` pairs.  Both speak the identical
frame format with the identical :class:`WireClosed`/:class:`WireError`
contract, so a blocking client talks to an async node (and vice versa)
without either noticing.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import struct
from typing import Any, Dict, Tuple

import numpy as np

from repro.errors import ServiceError

MAGIC = b"RSN1"
VERSION = 1

_PREFIX = struct.Struct("!4sBIQ")
_DIGEST_BYTES = 32

#: Sanity caps: a frame announcing more than this is corrupt or hostile,
#: not big — reject before allocating.
MAX_HEADER_BYTES = 1 << 20
MAX_BODY_BYTES = 1 << 31

# -- message kinds ------------------------------------------------------------
TEXTURE_REQUEST = 1
TEXTURE_RESPONSE = 2
CHUNK_REQUEST = 3
CHUNK_RESPONSE = 4
MANIFEST_REQUEST = 5
MANIFEST_RESPONSE = 6
PING = 7
PONG = 8
ERROR = 9

KIND_NAMES = {
    TEXTURE_REQUEST: "texture_request",
    TEXTURE_RESPONSE: "texture_response",
    CHUNK_REQUEST: "chunk_request",
    CHUNK_RESPONSE: "chunk_response",
    MANIFEST_REQUEST: "manifest_request",
    MANIFEST_RESPONSE: "manifest_response",
    PING: "ping",
    PONG: "pong",
    ERROR: "error",
}


class WireError(ServiceError):
    """Malformed, corrupt or truncated wire frame."""


class WireClosed(WireError):
    """The peer closed the connection at a clean frame boundary."""


def encode_frame(kind: int, header: Dict[str, Any], body: bytes = b"") -> bytes:
    """Serialise one frame (the wire bytes of *kind*/*header*/*body*)."""
    if kind not in KIND_NAMES:
        raise WireError(f"unknown message kind {kind}")
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise WireError(f"header too large ({len(header_bytes)} bytes)")
    if len(body) > MAX_BODY_BYTES:
        raise WireError(f"body too large ({len(body)} bytes)")
    digest = hashlib.sha256(header_bytes + body).digest()
    prefix = _PREFIX.pack(MAGIC, kind, len(header_bytes), len(body))
    return b"".join((prefix, header_bytes, body, digest))


def send_message(sock, kind: int, header: Dict[str, Any], body: bytes = b"") -> None:
    """Write one frame to *sock* (anything with ``sendall``)."""
    sock.sendall(encode_frame(kind, header, body))


def _recv_exact(sock, n: int, *, at_boundary: bool = False) -> bytes:
    """Read exactly *n* bytes; EOF raises :class:`WireClosed` only when
    it lands at a frame boundary (*at_boundary*), :class:`WireError`
    mid-frame — a truncated frame is corruption, not a clean goodbye."""
    parts = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 16))
        if not chunk:
            if at_boundary and got == 0:
                raise WireClosed("connection closed")
            raise WireError(f"connection closed mid-frame ({got}/{n} bytes)")
        parts.append(chunk)
        got += len(chunk)
    return b"".join(parts)


def _parse_prefix(prefix: bytes) -> Tuple[int, int, int]:
    """Validate the fixed prefix; returns ``(kind, header_len, body_len)``."""
    magic, kind, header_len, body_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r} (expected {MAGIC!r})")
    if kind not in KIND_NAMES:
        raise WireError(f"unknown message kind {kind}")
    if header_len > MAX_HEADER_BYTES:
        raise WireError(f"header length {header_len} exceeds cap")
    if body_len > MAX_BODY_BYTES:
        raise WireError(f"body length {body_len} exceeds cap")
    return kind, header_len, body_len


def _assemble(
    kind: int, header_bytes: bytes, body: bytes, digest: bytes
) -> Tuple[int, Dict[str, Any], bytes]:
    """Checksum + decode the variable part; returns the frame triple."""
    if hashlib.sha256(header_bytes + body).digest() != digest:
        raise WireError("frame checksum mismatch (corrupt frame)")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise WireError(f"frame header must be an object, got {type(header).__name__}")
    return kind, header, body


def recv_message(sock) -> Tuple[int, Dict[str, Any], bytes]:
    """Read one frame from *sock*; returns ``(kind, header, body)``.

    Raises :class:`WireClosed` on a clean close between frames and
    :class:`WireError` on anything that cannot be trusted: bad magic,
    unknown kind, oversize lengths, a checksum mismatch, malformed JSON,
    or a truncated frame.  After a :class:`WireError` the stream's
    framing is unreliable — callers must close the connection.
    """
    prefix = _recv_exact(sock, _PREFIX.size, at_boundary=True)
    kind, header_len, body_len = _parse_prefix(prefix)
    header_bytes = _recv_exact(sock, header_len)
    body = _recv_exact(sock, body_len)
    digest = _recv_exact(sock, _DIGEST_BYTES)
    return _assemble(kind, header_bytes, body, digest)


# -- the asyncio-stream twins -------------------------------------------------
async def _read_exact_async(
    reader: "asyncio.StreamReader", n: int, *, at_boundary: bool = False
) -> bytes:
    """``readexactly`` with the wire's EOF semantics: a clean close at a
    frame boundary is :class:`WireClosed`, anything mid-frame is
    :class:`WireError` corruption."""
    try:
        return await reader.readexactly(n)
    except asyncio.IncompleteReadError as exc:
        if at_boundary and not exc.partial:
            raise WireClosed("connection closed") from exc
        raise WireError(
            f"connection closed mid-frame ({len(exc.partial)}/{n} bytes)"
        ) from exc


async def recv_message_async(
    reader: "asyncio.StreamReader",
) -> Tuple[int, Dict[str, Any], bytes]:
    """:func:`recv_message` over an asyncio stream — same frame format,
    same :class:`WireClosed`/:class:`WireError` contract."""
    prefix = await _read_exact_async(reader, _PREFIX.size, at_boundary=True)
    kind, header_len, body_len = _parse_prefix(prefix)
    header_bytes = await _read_exact_async(reader, header_len)
    body = await _read_exact_async(reader, body_len)
    digest = await _read_exact_async(reader, _DIGEST_BYTES)
    return _assemble(kind, header_bytes, body, digest)


async def send_message_async(
    writer: "asyncio.StreamWriter",
    kind: int,
    header: Dict[str, Any],
    body: bytes = b"",
) -> None:
    """:func:`send_message` over an asyncio stream (write + drain)."""
    writer.write(encode_frame(kind, header, body))
    await writer.drain()


# -- texture payloads ---------------------------------------------------------
def encode_texture(texture: np.ndarray) -> Tuple[Dict[str, Any], bytes]:
    """``(header fields, body)`` shipping *texture* bit-exactly."""
    arr = np.ascontiguousarray(texture)
    return (
        {"shape": list(arr.shape), "dtype": arr.dtype.str},
        arr.tobytes(),
    )


def decode_texture(header: Dict[str, Any], body: bytes) -> np.ndarray:
    """Rebuild the array from :func:`encode_texture` output.

    Raises :class:`WireError` when the announced shape/dtype disagrees
    with the body size — a malformed response must not become a
    misshapen array.
    """
    try:
        dtype = np.dtype(str(header["dtype"]))
        shape = tuple(int(n) for n in header["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed texture header: {exc}") from exc
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
    if len(body) != expected:
        raise WireError(
            f"texture body is {len(body)} bytes, header announces {expected}"
        )
    return np.frombuffer(body, dtype=dtype).reshape(shape).copy()
