"""An in-process fleet: N real nodes on localhost, one process.

The cluster test harness and ``repro.cli cluster-bench`` both need a
fleet that is *real* where it matters — actual sockets, actual framed
wire traffic, actual per-node caches and schedulers — but cheap to
stand up and tear down.  :class:`LocalFleet` builds N
:class:`~repro.cluster.node.ClusterNode`\\ s on ephemeral localhost
ports, each over its own :class:`~repro.service.server.TextureService`
with a private cache directory, meshes them fully, and hands back one
:class:`~repro.cluster.peer.PeerClient` per node so a driver can land
requests on any member and watch them route.

Faults are first-class: :meth:`kill` drops a node mid-traffic (peers
discover the death through failed proxies and re-route);
:meth:`restart` brings the same identity back on a fresh port with its
on-disk cache intact, and the mesh re-learns it.
"""

from __future__ import annotations

import os
import tempfile
import threading
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.node import ClusterNode
from repro.cluster.peer import PeerClient
from repro.cluster.quotas import TenantQuotas
from repro.core.config import SpotNoiseConfig
from repro.errors import ServiceError
from repro.fields.analytic import random_smooth_field
from repro.fields.vectorfield import VectorField2D
from repro.service.server import TextureService


def analytic_source(seed: int = 0, grid: int = 25) -> Callable[[int], VectorField2D]:
    """A deterministic, immutable frame→field source for fleet tests.

    Frames are cached after first generation and never mutate, so
    ``memoize_digests`` is sound and every node in a fleet sees
    bit-identical fields for the same frame index.  Thread-safe: render
    workers on several nodes may fault in the same frame concurrently.
    """
    cache: Dict[int, VectorField2D] = {}
    lock = threading.Lock()

    def source(frame: int) -> VectorField2D:
        with lock:
            field = cache.get(frame)
            if field is None:
                field = random_smooth_field(seed=seed + 1000 + frame, n=grid)
                cache[frame] = field
            return field

    return source


class LocalFleet:
    """N fully-meshed cluster nodes in one process.

    Parameters
    ----------
    n_nodes:
        Fleet size (>= 1).
    config:
        The shared synthesis config.  Must have an explicit backend —
        with ``"auto"`` each node would plan independently and nodes
        whose plans differed would fingerprint (and therefore route)
        the same frame differently, silently breaking global
        single-flight.
    field_source:
        Shared frame→field callable; defaults to
        :func:`analytic_source` seeded by *seed*.
    base_dir:
        Parent directory for per-node cache dirs (a private temp
        directory by default, removed on :meth:`close`).
    n_workers:
        Render workers per node.
    quotas_factory:
        Optional zero-arg factory building one
        :class:`~repro.cluster.quotas.TenantQuotas` per node (quota is
        per entry node, so each member gets its own).
    client_kwargs:
        Extra :class:`~repro.cluster.peer.PeerClient` parameters for
        both the mesh and the driver clients (tests shrink timeouts and
        inject no-op sleeps here).
    """

    def __init__(
        self,
        n_nodes: int,
        config: SpotNoiseConfig,
        field_source: Optional[Callable[[int], VectorField2D]] = None,
        seed: int = 0,
        base_dir: "str | None" = None,
        n_workers: int = 2,
        quotas_factory: Optional[Callable[[], TenantQuotas]] = None,
        **client_kwargs,
    ):
        if n_nodes < 1:
            raise ServiceError(f"n_nodes must be >= 1, got {n_nodes}")
        if config.backend == "auto":
            raise ServiceError(
                "fleet configs must use an explicit backend: 'auto' resolves "
                "per node and divergent plans would route the same frame to "
                "different owners"
            )
        self.config = config
        self.field_source = field_source or analytic_source(seed=seed)
        self._owns_base_dir = base_dir is None
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if base_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-")
            base_dir = self._tmp.name
        self.base_dir = base_dir
        self._n_workers = n_workers
        self._quotas_factory = quotas_factory
        self._client_kwargs = client_kwargs
        self.nodes: List[Optional[ClusterNode]] = []
        self.clients: List[Optional[PeerClient]] = []
        for i in range(n_nodes):
            node = self._build_node(i)
            self.nodes.append(node)
            self.clients.append(PeerClient(node.address, **client_kwargs))
        # Full mesh: every node knows every other from the start.
        for i, node in enumerate(self.nodes):
            for j, other in enumerate(self.nodes):
                if i != j:
                    node.add_peer(other.node_id, other.address, **client_kwargs)

    def _node_id(self, i: int) -> str:
        return f"node-{i}"

    def _build_node(self, i: int) -> ClusterNode:
        cache_dir = os.path.join(self.base_dir, self._node_id(i), "cache")
        service = TextureService(
            self.field_source,
            self.config,
            disk_dir=cache_dir,
            n_workers=self._n_workers,
            memoize_digests=True,
        )
        node = ClusterNode(
            self._node_id(i),
            service,
            quotas=self._quotas_factory() if self._quotas_factory else None,
            blob_store=service.cache.disk,
        )
        node.serve()
        return node

    def __len__(self) -> int:
        return len(self.nodes)

    def live_indices(self) -> List[int]:
        return [i for i, node in enumerate(self.nodes) if node is not None]

    # -- driving traffic ---------------------------------------------------------
    def request(self, i: int, frame: int, tenant: str = "default") -> np.ndarray:
        """Land a request for *frame* on node *i* over the wire."""
        client = self.clients[i]
        if client is None:
            raise ServiceError(f"node {i} is not running")
        texture, _ = client.request_texture(frame, tenant=tenant)
        return texture

    def node_renders(self) -> List[int]:
        """Actual renders performed per live node (dead nodes report 0)."""
        return [
            node.service.stats.snapshot()["renders"] if node is not None else 0
            for node in self.nodes
        ]

    def total_renders(self) -> int:
        """Fleet-wide render count — the exactly-once metric."""
        return sum(self.node_renders())

    def total_forwards(self) -> int:
        """Fleet-wide proxied-request count."""
        return sum(
            node.service.stats.snapshot()["forwards"]
            for node in self.nodes
            if node is not None
        )

    # -- faults ------------------------------------------------------------------
    def kill(self, i: int) -> None:
        """Drop node *i* abruptly; peers learn of it through failures."""
        node, client = self.nodes[i], self.clients[i]
        self.nodes[i], self.clients[i] = None, None
        if client is not None:
            client.close()
        if node is not None:
            node.service.close()
            node.close()

    def restart(self, i: int) -> None:
        """Bring node *i* back (same identity, fresh port, same disk)."""
        if self.nodes[i] is not None:
            raise ServiceError(f"node {i} is already running")
        node = self._build_node(i)
        self.nodes[i] = node
        self.clients[i] = PeerClient(node.address, **self._client_kwargs)
        for j in self.live_indices():
            if j == i:
                continue
            other = self.nodes[j]
            other.add_peer(node.node_id, node.address, **self._client_kwargs)
            node.add_peer(other.node_id, other.address, **self._client_kwargs)

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        for client in self.clients:
            if client is not None:
                client.close()
        for node in self.nodes:
            if node is not None:
                node.service.close()
                node.close()
        self.nodes = []
        self.clients = []
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "LocalFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
