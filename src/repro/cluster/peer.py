"""Client side of the node-to-node (and client-to-node) protocol.

:class:`PeerClient` speaks :mod:`repro.cluster.wire` to one node's
socket front end: request a texture, fetch a chunk by digest, pull the
node's manifest, ping.  Connections are pooled and reused across calls;
a call that hits a dead socket, a truncated frame or a corrupt frame
retries on a *fresh* connection with exponential backoff, and only after
the attempt budget is spent does it surface
:class:`PeerUnavailable` — at which point the routing layer
(:class:`repro.cluster.node.ClusterNode`) drops the peer from its ring
and re-routes to the key's new owner.

On the async spine every round trip is a coroutine on the process
:class:`~repro.runtime.loop.RuntimeLoop`: the connection pool is
loop-confined state (``StreamReader``/``StreamWriter`` pairs, no lock),
socket I/O awaits with a deadline, and the injected backoff sleep runs
off-loop so a retrying client never stalls the spine.  The public API
stays blocking — each call is a ``run_coroutine_threadsafe`` shim — so
render workers and routing threads use the client exactly as before.

Application-level rejections travel as ``ERROR`` frames and are *not*
retried here: an admission shed (:class:`~repro.errors.AdmissionError`)
or a service error means the peer is alive and said no — retrying the
same request at the same node would just double the load that caused
the shed.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster import wire
from repro.cluster.manifest import ClusterManifest
from repro.errors import AdmissionError, ServiceError
from repro.runtime.loop import RuntimeLoop, get_runtime_loop


class PeerUnavailable(ServiceError):
    """The peer could not be reached (or kept corrupting frames)."""


class PeerClient:
    """Pooled, retrying client for one cluster node.

    Parameters
    ----------
    address:
        ``(host, port)`` of the peer's socket front end.
    timeout:
        Per-socket-operation timeout in seconds.
    attempts:
        Transport attempts per call before :class:`PeerUnavailable`.
    backoff_s:
        Base of the exponential between-attempt backoff
        (``backoff_s * 2**attempt``).
    sleep:
        Injectable sleep (tests pass a no-op to keep fault suites fast).
        Runs on an executor thread, never on the runtime loop.
    runtime:
        The spine the client's coroutines run on; defaults to the
        process singleton.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        timeout: float = 10.0,
        attempts: int = 3,
        backoff_s: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        runtime: Optional[RuntimeLoop] = None,
    ):
        if attempts < 1:
            raise ServiceError(f"attempts must be >= 1, got {attempts}")
        self.address = (str(address[0]), int(address[1]))
        self.timeout = float(timeout)
        self.attempts = int(attempts)
        self.backoff_s = float(backoff_s)
        self._sleep = sleep
        self._runtime = runtime or get_runtime_loop()
        # Loop-confined: only coroutines on the runtime loop touch these.
        self._pool: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._closed = False

    # -- connection pool ---------------------------------------------------------
    async def _checkout(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._closed:
            raise PeerUnavailable(f"client for {self.address} is closed")
        if self._pool:
            return self._pool.pop()
        return await asyncio.wait_for(
            asyncio.open_connection(self.address[0], self.address[1]),
            self.timeout,
        )

    def _checkin(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if not self._closed:
            self._pool.append((reader, writer))
        else:
            writer.close()

    def close(self) -> None:
        self._runtime.run(self._close_async())

    async def _close_async(self) -> None:
        self._closed = True
        pool, self._pool = self._pool, []
        for _reader, writer in pool:
            writer.close()

    # -- one framed round trip ---------------------------------------------------
    def _call(
        self, kind: int, header: Dict[str, Any], body: bytes = b""
    ) -> Tuple[int, Dict[str, Any], bytes]:
        """Send one request frame, return the response frame (blocking shim)."""
        return self._runtime.run(self._call_async(kind, header, body))

    async def _call_async(
        self, kind: int, header: Dict[str, Any], body: bytes = b""
    ) -> Tuple[int, Dict[str, Any], bytes]:
        """One request/response round trip on the spine.

        Transport faults (refused/reset connections, truncated or
        corrupt frames, deadline expiry) retry on a fresh connection
        with exponential backoff; ``ERROR`` frames are decoded into the
        corresponding application exception and never retried.
        """
        loop = asyncio.get_running_loop()
        last: Optional[Exception] = None
        for attempt in range(self.attempts):
            if attempt:
                delay = self.backoff_s * (2 ** (attempt - 1))
                # Off-loop: the injected sleep may really block.
                await loop.run_in_executor(None, self._sleep, delay)
            try:
                reader, writer = await self._checkout()
            except (OSError, asyncio.TimeoutError) as exc:
                last = exc
                continue
            try:
                await asyncio.wait_for(
                    wire.send_message_async(writer, kind, header, body), self.timeout
                )
                response = await asyncio.wait_for(
                    wire.recv_message_async(reader), self.timeout
                )
            except (OSError, wire.WireError, asyncio.TimeoutError) as exc:
                # The stream's framing can no longer be trusted; the
                # connection must not go back in the pool.
                writer.close()
                last = exc
                continue
            self._checkin(reader, writer)
            return self._raise_on_error(response)
        raise PeerUnavailable(
            f"peer {self.address} unavailable after {self.attempts} attempts: {last}"
        ) from last

    @staticmethod
    def _raise_on_error(
        response: Tuple[int, Dict[str, Any], bytes]
    ) -> Tuple[int, Dict[str, Any], bytes]:
        kind, header, body = response
        if kind != wire.ERROR:
            return response
        message = str(header.get("message", "peer error"))
        if header.get("error") == "admission":
            raise AdmissionError(message)
        raise ServiceError(message)

    # -- the protocol ------------------------------------------------------------
    def request_texture(
        self, frame: int, tenant: str = "default", direct: bool = False
    ) -> Tuple[np.ndarray, Dict[str, Any]]:
        """Request *frame*; returns ``(texture, response header)``.

        *direct* marks a proxied hop: the receiving node serves locally
        (no quota charge, no re-routing) even if its ring view disagrees
        — the entry node already charged the tenant and picked an owner.
        """
        kind, header, body = self._call(
            wire.TEXTURE_REQUEST,
            {"frame": int(frame), "tenant": tenant, "direct": bool(direct)},
        )
        if kind != wire.TEXTURE_RESPONSE:
            raise ServiceError(
                f"expected texture_response, got {wire.KIND_NAMES.get(kind, kind)}"
            )
        return wire.decode_texture(header, body), header

    def fetch_chunk(self, digest: str) -> Optional[bytes]:
        """The raw chunk payload stored under *digest*, or ``None``.

        The returned bytes are **unverified** — callers sync through
        :func:`repro.cluster.manifest.sync_manifest`, which re-hashes
        against the published ``payload_sha256`` before storing.
        """
        kind, header, body = self._call(wire.CHUNK_REQUEST, {"digest": str(digest)})
        if kind != wire.CHUNK_RESPONSE:
            raise ServiceError(
                f"expected chunk_response, got {wire.KIND_NAMES.get(kind, kind)}"
            )
        return body if header.get("found") else None

    def manifest(self) -> ClusterManifest:
        """The peer's current published manifest."""
        kind, header, _ = self._call(wire.MANIFEST_REQUEST, {})
        if kind != wire.MANIFEST_RESPONSE:
            raise ServiceError(
                f"expected manifest_response, got {wire.KIND_NAMES.get(kind, kind)}"
            )
        payload = header.get("manifest")
        if not isinstance(payload, dict):
            raise ServiceError("manifest_response carried no manifest object")
        return ClusterManifest.from_dict(payload)

    def ping(self) -> Dict[str, Any]:
        """Round-trip liveness probe; returns the pong header."""
        kind, header, _ = self._call(wire.PING, {})
        if kind != wire.PONG:
            raise ServiceError(
                f"expected pong, got {wire.KIND_NAMES.get(kind, kind)}"
            )
        return header

    def __enter__(self) -> "PeerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
