"""One fleet member: a socket front end over a :class:`TextureService`.

:class:`ClusterNode` binds a local service to the wire protocol and a
consistent-hash ring.  Every texture request — from a client or from a
peer — resolves to the digest it would be cached under
(:meth:`~repro.service.server.TextureService.render_digest`), and the
ring names the one node that owns that digest:

* **owned here** → serve from the local stack (cache hit, coalesced
  join, or render).  Concurrent duplicates from the whole fleet land on
  this node and coalesce in its
  :class:`~repro.service.scheduler.RequestScheduler`, so a distinct
  frame renders exactly once *globally* — single-flight is routing plus
  local coalescing, no consensus protocol;
* **owned elsewhere** → proxy to the owner and relay its bytes.  The
  proxied hop is marked ``direct`` so the owner serves locally even if
  its ring view momentarily disagrees during a membership change —
  worst case is a duplicate render on the old owner, never a wrong
  response;
* **owner unreachable** → drop it from the ring
  (:meth:`mark_dead`) and retry at the key's *new* owner with bounded
  backoff; when every route fails, serve locally.  Availability
  degrades to extra renders, not errors.

Quotas (:class:`~repro.cluster.quotas.TenantQuotas`) are charged once,
at the node the request entered on; ``direct`` hops skip them.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.cluster import wire
from repro.cluster.manifest import ClusterManifest, publish_store
from repro.cluster.peer import PeerClient, PeerUnavailable
from repro.cluster.quotas import TenantQuotas
from repro.cluster.ring import HashRing
from repro.errors import AdmissionError, ServiceError
from repro.service.server import TextureService

#: How many distinct owners a proxying node will try before serving the
#: request itself.  Each failure removes the dead owner from the ring,
#: so attempts walk successive owners, not the same corpse.
PROXY_ATTEMPTS = 3


class ClusterNode:
    """Socket front end + ring routing for one fleet member.

    Parameters
    ----------
    node_id:
        Stable identifier; ring positions derive from it, so it must be
        unique fleet-wide and identical across restarts for ownership
        to be stable.
    service:
        The local :class:`~repro.service.server.TextureService`.  All
        fleet members must be configured with the same *resolved*
        config (explicit backend, not ``"auto"``) — ownership is routed
        by content digest, and configs that fingerprint differently
        would route the same frame to different owners.
    host / port:
        Bind address; port 0 picks an ephemeral port (tests).
    quotas:
        Optional per-tenant rate limits, charged at the entry node.
    blob_store:
        Optional blob store (the delta-chunk tier) served to syncing
        peers via chunk/manifest requests.
    sequences:
        Sequence manifests advertised in this node's published
        manifest.
    """

    def __init__(
        self,
        node_id: str,
        service: TextureService,
        host: str = "127.0.0.1",
        port: int = 0,
        quotas: Optional[TenantQuotas] = None,
        blob_store=None,
        sequences: Iterable[Dict[str, Any]] = (),
    ):
        if not node_id:
            raise ServiceError("node_id must be non-empty")
        self.node_id = node_id
        self.service = service
        self.quotas = quotas
        self.blob_store = blob_store
        self.sequences = tuple(dict(s) for s in sequences)
        self.ring = HashRing([node_id])
        self._host = host
        self._port = int(port)
        self._lock = threading.Lock()
        self._peers: Dict[str, PeerClient] = {}  #: guarded-by: _lock
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        # (thread, connection) per live client connection, so close()
        # can sever the sockets — a handler blocked in recv would
        # otherwise outlive the node and answer as a half-dead zombie
        # instead of letting peers fail over.
        self._conns: "list[tuple[threading.Thread, socket.socket]]" = []  #: guarded-by: _lock
        self._closed = False
        self.address: Optional[Tuple[str, int]] = None

    # -- membership --------------------------------------------------------------
    def add_peer(self, node_id: str, address: Tuple[str, int], **client_kwargs) -> None:
        """Join *node_id* at *address* to this node's ring view."""
        if node_id == self.node_id:
            return
        client = PeerClient(address, **client_kwargs)
        with self._lock:
            old = self._peers.get(node_id)
            self._peers[node_id] = client
        if old is not None:
            old.close()
        self.ring.add(node_id)

    def mark_dead(self, node_id: str) -> None:
        """Drop *node_id* from the ring; its keys remap to survivors."""
        if node_id == self.node_id:
            return
        self.ring.discard(node_id)
        with self._lock:
            client = self._peers.pop(node_id, None)
        if client is not None:
            client.close()

    def peer(self, node_id: str) -> Optional[PeerClient]:
        with self._lock:
            return self._peers.get(node_id)

    # -- serving -----------------------------------------------------------------
    def serve(self) -> Tuple[str, int]:
        """Bind, listen and start the accept loop; returns the address."""
        if self._listener is not None:
            assert self.address is not None
            return self.address
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        listener.settimeout(0.25)  # poll _closed without busy-waiting
        self._listener = listener
        self.address = (self._host, listener.getsockname()[1])
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"cluster-accept-{self.node_id}", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during shutdown
            conn.settimeout(30.0)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"cluster-conn-{self.node_id}",
                daemon=True,
            )
            with self._lock:
                self._conns = [
                    (t, s) for t, s in self._conns if t.is_alive()
                ] + [(thread, conn)]
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._closed:
                try:
                    kind, header, body = wire.recv_message(conn)
                except wire.WireClosed:
                    return
                except (wire.WireError, OSError):
                    # Framing is gone; nothing sane can be sent back.
                    return
                if self._closed:
                    # A request that raced shutdown: drop the connection
                    # so the requester fails over instead of being told
                    # "closed" by a node that is supposed to be dead.
                    return
                try:
                    self._dispatch(conn, kind, header, body)
                except AdmissionError as exc:
                    self._send_error(conn, "admission", exc)
                except ServiceError as exc:
                    self._send_error(conn, "service", exc)
                except OSError:
                    return  # reply failed; peer will retry elsewhere
        finally:
            conn.close()

    @staticmethod
    def _send_error(conn: socket.socket, error_kind: str, exc: Exception) -> None:
        try:
            wire.send_message(
                conn, wire.ERROR, {"error": error_kind, "message": str(exc)}
            )
        except OSError:
            pass  # the requester's retry path handles a vanished reply

    def _dispatch(
        self, conn: socket.socket, kind: int, header: Dict[str, Any], body: bytes
    ) -> None:
        if kind == wire.TEXTURE_REQUEST:
            self._handle_texture(conn, header)
        elif kind == wire.CHUNK_REQUEST:
            self._handle_chunk(conn, header)
        elif kind == wire.MANIFEST_REQUEST:
            wire.send_message(
                conn, wire.MANIFEST_RESPONSE, {"manifest": self.manifest().to_dict()}
            )
        elif kind == wire.PING:
            wire.send_message(conn, wire.PONG, {"node": self.node_id})
        else:
            raise ServiceError(
                f"unexpected request kind {wire.KIND_NAMES.get(kind, kind)}"
            )

    # -- texture routing ---------------------------------------------------------
    def _handle_texture(self, conn: socket.socket, header: Dict[str, Any]) -> None:
        try:
            frame = int(header["frame"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed texture_request: {exc}") from exc
        tenant = str(header.get("tenant", "default"))
        direct = bool(header.get("direct", False))
        if not direct and self.quotas is not None:
            self.quotas.charge(tenant)
        texture, meta = self.serve_frame(frame, tenant=tenant, direct=direct)
        tex_header, tex_body = wire.encode_texture(texture)
        tex_header.update(meta)
        wire.send_message(conn, wire.TEXTURE_RESPONSE, tex_header, tex_body)

    def serve_frame(
        self, frame: int, tenant: str = "default", direct: bool = False
    ) -> "tuple[Any, Dict[str, Any]]":
        """Serve *frame*, routing through the ring; quota NOT charged here.

        Returns ``(texture, meta)`` where meta records the digest, the
        serving node and the cache source — the header fields of a
        texture response.
        """
        digest = self.service.render_digest(frame)
        for _attempt in range(PROXY_ATTEMPTS):
            try:
                owner = self.ring.owner(digest)
            except ServiceError:
                owner = self.node_id  # empty ring: last node standing
            if direct or owner == self.node_id:
                break
            client = self.peer(owner)
            if client is None:
                # Ring knows a node we hold no client for (lost it to a
                # failure race): treat as dead and re-route.
                self.mark_dead(owner)
                continue
            try:
                texture, remote_header = client.request_texture(
                    frame, tenant=tenant, direct=True
                )
            except PeerUnavailable:
                self.mark_dead(owner)
                continue
            self.service.stats.record_forward()
            return texture, {
                "digest": digest,
                "node": str(remote_header.get("node", owner)),
                "source": f"peer:{owner}",
            }
        response = self.service.request(frame)
        return response.texture, {
            "digest": digest,
            "node": self.node_id,
            "source": response.source,
        }

    # -- chunks + manifests ------------------------------------------------------
    def _handle_chunk(self, conn: socket.socket, header: Dict[str, Any]) -> None:
        digest = str(header.get("digest", ""))
        payload = (
            self.blob_store.get_bytes(digest)
            if self.blob_store is not None and digest
            else None
        )
        if payload is None:
            wire.send_message(conn, wire.CHUNK_RESPONSE, {"found": False})
        else:
            wire.send_message(conn, wire.CHUNK_RESPONSE, {"found": True}, payload)

    def manifest(self) -> ClusterManifest:
        """This node's current published manifest."""
        if self.blob_store is None:
            return ClusterManifest(
                node_id=self.node_id, chunks=(), sequences=self.sequences
            )
        return publish_store(self.blob_store, self.node_id, sequences=self.sequences)

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._lock:
            peers, self._peers = dict(self._peers), {}
            conns, self._conns = list(self._conns), []
        for client in peers.values():
            client.close()
        for _thread, conn in conns:
            conn.close()
        for thread, _conn in conns:
            thread.join(timeout=1.0)

    def __enter__(self) -> "ClusterNode":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
