"""One fleet member: a socket front end over a :class:`TextureService`.

:class:`ClusterNode` binds a local service to the wire protocol and a
consistent-hash ring.  Every texture request — from a client or from a
peer — resolves to the digest it would be cached under
(:meth:`~repro.service.server.TextureService.render_digest`), and the
ring names the one node that owns that digest:

* **owned here** → serve from the local stack (cache hit, coalesced
  join, or render).  Concurrent duplicates from the whole fleet land on
  this node and coalesce in its
  :class:`~repro.service.scheduler.RequestScheduler`, so a distinct
  frame renders exactly once *globally* — single-flight is routing plus
  local coalescing, no consensus protocol;
* **owned elsewhere** → proxy to the owner and relay its bytes.  The
  proxied hop is marked ``direct`` so the owner serves locally even if
  its ring view momentarily disagrees during a membership change —
  worst case is a duplicate render on the old owner, never a wrong
  response;
* **owner unreachable** → drop it from the ring
  (:meth:`mark_dead`) and retry at the key's *new* owner with bounded
  backoff; when every route fails, serve locally.  Availability
  degrades to extra renders, not errors.

The front end runs on the process
:class:`~repro.runtime.loop.RuntimeLoop`: ``asyncio.start_server``
replaces the accept thread, each live connection is one coroutine task
(not one thread), and quota decisions happen on the loop before any
work is scheduled.  Render and proxy work — everything that may block
on a render pool or a peer round trip — is offloaded to a bounded
serve executor, so a slow render never stalls the frame pumps of the
other connections.

Quotas (:class:`~repro.cluster.quotas.TenantQuotas`) are charged once,
at the node the request entered on; ``direct`` hops skip them.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.cluster import wire
from repro.cluster.manifest import ClusterManifest, publish_store
from repro.cluster.peer import PeerClient, PeerUnavailable
from repro.cluster.quotas import TenantQuotas
from repro.cluster.ring import HashRing
from repro.errors import AdmissionError, ServiceError
from repro.runtime.loop import RuntimeLoop, get_runtime_loop
from repro.service.server import TextureService

#: How many distinct owners a proxying node will try before serving the
#: request itself.  Each failure removes the dead owner from the ring,
#: so attempts walk successive owners, not the same corpse.
PROXY_ATTEMPTS = 3

#: Seconds a connection may sit idle between frames before the node
#: drops it (the old per-socket timeout, now an awaited deadline).
CONN_IDLE_S = 30.0

#: Cap on concurrently *serving* requests per node.  Connections beyond
#: this still connect and pump frames (they are cheap coroutines); only
#: the blocking serve work queues here.
SERVE_WORKERS = 32


class ClusterNode:
    """Socket front end + ring routing for one fleet member.

    Parameters
    ----------
    node_id:
        Stable identifier; ring positions derive from it, so it must be
        unique fleet-wide and identical across restarts for ownership
        to be stable.
    service:
        The local :class:`~repro.service.server.TextureService`.  All
        fleet members must be configured with the same *resolved*
        config (explicit backend, not ``"auto"``) — ownership is routed
        by content digest, and configs that fingerprint differently
        would route the same frame to different owners.
    host / port:
        Bind address; port 0 picks an ephemeral port (tests).
    quotas:
        Optional per-tenant rate limits, charged at the entry node.
    blob_store:
        Optional blob store (the delta-chunk tier) served to syncing
        peers via chunk/manifest requests.
    sequences:
        Sequence manifests advertised in this node's published
        manifest.
    runtime:
        The spine the front end runs on; defaults to the process
        singleton.
    """

    def __init__(
        self,
        node_id: str,
        service: TextureService,
        host: str = "127.0.0.1",
        port: int = 0,
        quotas: Optional[TenantQuotas] = None,
        blob_store=None,
        sequences: Iterable[Dict[str, Any]] = (),
        runtime: Optional[RuntimeLoop] = None,
    ):
        if not node_id:
            raise ServiceError("node_id must be non-empty")
        self.node_id = node_id
        self.service = service
        self.quotas = quotas
        self.blob_store = blob_store
        self.sequences = tuple(dict(s) for s in sequences)
        self.ring = HashRing([node_id])
        self._host = host
        self._port = int(port)
        self._runtime = runtime or get_runtime_loop()
        self._lock = threading.Lock()
        self._peers: Dict[str, PeerClient] = {}  #: guarded-by: _lock
        # Loop-confined: the listening server and one task per live
        # connection, so shutdown can cancel a handler blocked in a
        # read — a half-dead zombie answering requests is worse than a
        # dropped connection, which peers fail over from.
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self.address: Optional[Tuple[str, int]] = None

    # -- membership --------------------------------------------------------------
    def add_peer(self, node_id: str, address: Tuple[str, int], **client_kwargs) -> None:
        """Join *node_id* at *address* to this node's ring view."""
        if node_id == self.node_id:
            return
        client = PeerClient(address, **client_kwargs)
        with self._lock:
            old = self._peers.get(node_id)
            self._peers[node_id] = client
        if old is not None:
            old.close()
        self.ring.add(node_id)

    def mark_dead(self, node_id: str) -> None:
        """Drop *node_id* from the ring; its keys remap to survivors."""
        if node_id == self.node_id:
            return
        self.ring.discard(node_id)
        with self._lock:
            client = self._peers.pop(node_id, None)
        if client is not None:
            client.close()

    def peer(self, node_id: str) -> Optional[PeerClient]:
        with self._lock:
            return self._peers.get(node_id)

    # -- serving -----------------------------------------------------------------
    def serve(self) -> Tuple[str, int]:
        """Bind, listen and start serving on the spine; returns the address."""
        if self.address is not None:
            return self.address
        self._pool = ThreadPoolExecutor(
            max_workers=SERVE_WORKERS,
            thread_name_prefix=f"cluster-serve-{self.node_id}",
        )
        self.address = self._runtime.run(self._start())
        return self.address

    async def _start(self) -> Tuple[str, int]:
        server = await asyncio.start_server(
            self._on_connection, self._host, self._port, backlog=64
        )
        self._server = server
        port = server.sockets[0].getsockname()[1]
        return (self._host, int(port))

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._conn_tasks.discard(task)
            writer.close()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self._closed:
            try:
                kind, header, body = await asyncio.wait_for(
                    wire.recv_message_async(reader), CONN_IDLE_S
                )
            except wire.WireClosed:
                return
            except (wire.WireError, OSError, asyncio.TimeoutError):
                # Framing is gone (or the peer idled out); nothing sane
                # can be sent back.
                return
            if self._closed:
                # A request that raced shutdown: drop the connection so
                # the requester fails over instead of being told
                # "closed" by a node that is supposed to be dead.
                return
            try:
                await self._dispatch(writer, kind, header, body)
            except AdmissionError as exc:
                await self._send_error(writer, "admission", exc)
            except ServiceError as exc:
                await self._send_error(writer, "service", exc)
            except OSError:
                return  # reply failed; peer will retry elsewhere

    @staticmethod
    async def _send_error(
        writer: asyncio.StreamWriter, error_kind: str, exc: Exception
    ) -> None:
        try:
            await wire.send_message_async(
                writer, wire.ERROR, {"error": error_kind, "message": str(exc)}
            )
        except OSError:
            pass  # the requester's retry path handles a vanished reply

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        kind: int,
        header: Dict[str, Any],
        body: bytes,
    ) -> None:
        if kind == wire.TEXTURE_REQUEST:
            await self._handle_texture(writer, header)
        elif kind == wire.CHUNK_REQUEST:
            await self._handle_chunk(writer, header)
        elif kind == wire.MANIFEST_REQUEST:
            manifest = await self._offload(self.manifest)
            await wire.send_message_async(
                writer, wire.MANIFEST_RESPONSE, {"manifest": manifest.to_dict()}
            )
        elif kind == wire.PING:
            await wire.send_message_async(writer, wire.PONG, {"node": self.node_id})
        else:
            raise ServiceError(
                f"unexpected request kind {wire.KIND_NAMES.get(kind, kind)}"
            )

    async def _offload(self, fn, *args, **kwargs):
        """Run blocking serve work on the bounded serve executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, partial(fn, *args, **kwargs))

    # -- texture routing ---------------------------------------------------------
    async def _handle_texture(
        self, writer: asyncio.StreamWriter, header: Dict[str, Any]
    ) -> None:
        try:
            frame = int(header["frame"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed texture_request: {exc}") from exc
        tenant = str(header.get("tenant", "default"))
        direct = bool(header.get("direct", False))
        if not direct and self.quotas is not None:
            # The admission decision runs on the loop, before any serve
            # work is scheduled: a shed request costs one callback.
            self.quotas.charge(tenant)
        texture, meta = await self._offload(
            self.serve_frame, frame, tenant=tenant, direct=direct
        )
        tex_header, tex_body = wire.encode_texture(texture)
        tex_header.update(meta)
        await wire.send_message_async(writer, wire.TEXTURE_RESPONSE, tex_header, tex_body)

    def serve_frame(
        self, frame: int, tenant: str = "default", direct: bool = False
    ) -> "tuple[Any, Dict[str, Any]]":
        """Serve *frame*, routing through the ring; quota NOT charged here.

        Returns ``(texture, meta)`` where meta records the digest, the
        serving node and the cache source — the header fields of a
        texture response.  Blocking: runs on the serve executor (or any
        caller thread), never on the loop.
        """
        digest = self.service.render_digest(frame)
        for _attempt in range(PROXY_ATTEMPTS):
            try:
                owner = self.ring.owner(digest)
            except ServiceError:
                owner = self.node_id  # empty ring: last node standing
            if direct or owner == self.node_id:
                break
            client = self.peer(owner)
            if client is None:
                # Ring knows a node we hold no client for (lost it to a
                # failure race): treat as dead and re-route.
                self.mark_dead(owner)
                continue
            try:
                texture, remote_header = client.request_texture(
                    frame, tenant=tenant, direct=True
                )
            except PeerUnavailable:
                self.mark_dead(owner)
                continue
            self.service.stats.record_forward()
            return texture, {
                "digest": digest,
                "node": str(remote_header.get("node", owner)),
                "source": f"peer:{owner}",
            }
        response = self.service.request(frame)
        return response.texture, {
            "digest": digest,
            "node": self.node_id,
            "source": response.source,
        }

    # -- chunks + manifests ------------------------------------------------------
    async def _handle_chunk(
        self, writer: asyncio.StreamWriter, header: Dict[str, Any]
    ) -> None:
        digest = str(header.get("digest", ""))
        payload = (
            await self._offload(self.blob_store.get_bytes, digest)
            if self.blob_store is not None and digest
            else None
        )
        if payload is None:
            await wire.send_message_async(writer, wire.CHUNK_RESPONSE, {"found": False})
        else:
            await wire.send_message_async(
                writer, wire.CHUNK_RESPONSE, {"found": True}, payload
            )

    def manifest(self) -> ClusterManifest:
        """This node's current published manifest."""
        if self.blob_store is None:
            return ClusterManifest(
                node_id=self.node_id, chunks=(), sequences=self.sequences
            )
        return publish_store(self.blob_store, self.node_id, sequences=self.sequences)

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.address is not None and self._runtime.alive:
            self._runtime.run(self._shutdown())
        with self._lock:
            peers, self._peers = dict(self._peers), {}
        for client in peers.values():
            client.close()
        if self._pool is not None:
            # Don't wait: an offloaded serve blocked on a peer retry
            # must not hold shutdown hostage; its connection task is
            # already cancelled and its reply socket closed.
            self._pool.shutdown(wait=False)

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        tasks = [t for t in self._conn_tasks if not t.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def __enter__(self) -> "ClusterNode":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
