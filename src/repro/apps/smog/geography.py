"""Synthetic geography.

Figure 6 draws a map of Europe under the pollutant; real coastline data
is not shipped with this reproduction, so a deterministic Europe-like
landmass is generated from band-limited noise (fixed seed): a large
connected continent in the east/south with an island to the north-west —
enough structure for the overlay, deposition and emission-placement code
paths to behave like the real application.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ApplicationError
from repro.fields.grid import RegularGrid
from repro.fields.sampling import nearest_sample
from repro.utils.rng import as_rng


def europe_like_landmass(grid: RegularGrid, seed: int = 1997, land_fraction: float = 0.55) -> np.ndarray:
    """Boolean land mask on the model grid (True = land).

    Built from smoothed random noise biased toward the south-east corner
    (the "continent") and thresholded to the requested land fraction.
    Deterministic for a given seed and grid.
    """
    if not (0.05 <= land_fraction <= 0.95):
        raise ApplicationError(f"land_fraction must be in [0.05, 0.95], got {land_fraction}")
    rng = as_rng(seed)
    ny, nx = grid.shape
    white = rng.standard_normal((ny, nx))
    spec = np.fft.rfft2(white)
    ky = np.fft.fftfreq(ny)[:, None]
    kx = np.fft.rfftfreq(nx)[None, :]
    spec *= np.exp(-((kx**2 + ky**2) * (2 * np.pi * 4.0) ** 2) / 2.0)
    smooth = np.fft.irfft2(spec, s=(ny, nx))
    smooth = (smooth - smooth.mean()) / (smooth.std() + 1e-12)

    # Continent bias: stronger land tendency toward the south-east.
    gy = np.linspace(0.6, -0.4, ny)[:, None]
    gx = np.linspace(-0.5, 0.7, nx)[None, :]
    fieldvals = smooth + 1.2 * (gx + gy)

    threshold = np.quantile(fieldvals, 1.0 - land_fraction)
    return fieldvals >= threshold


def land_mask_raster(mask: np.ndarray, grid: RegularGrid, size: int) -> np.ndarray:
    """Resample the grid-resolution land mask to a size x size pixel raster."""
    if size < 1:
        raise ApplicationError(f"size must be >= 1, got {size}")
    x0, x1, y0, y1 = grid.bounds
    xs = np.linspace(x0, x1, size)
    ys = np.linspace(y0, y1, size)
    X, Y = np.meshgrid(xs, ys)
    pts = np.stack([X.ravel(), Y.ravel()], axis=-1)
    fx, fy = grid.world_to_fractional(pts)
    vals = nearest_sample(mask.astype(np.float64), fx, fy)
    return (vals > 0.5).reshape(size, size)


def random_land_points(mask: np.ndarray, grid: RegularGrid, n: int, seed=None) -> np.ndarray:
    """Draw *n* world positions uniformly over land cells (emission siting)."""
    if n < 0:
        raise ApplicationError(f"cannot draw {n} points")
    land = np.argwhere(mask)
    if land.size == 0:
        raise ApplicationError("landmass is empty")
    rng = as_rng(seed)
    pick = land[rng.integers(0, land.shape[0], size=n)]
    jitter = rng.uniform(-0.5, 0.5, size=(n, 2))
    fy = pick[:, 0] + jitter[:, 0]
    fx = pick[:, 1] + jitter[:, 1]
    return grid.fractional_to_world(np.clip(fx, 0, grid.nx - 1), np.clip(fy, 0, grid.ny - 1))
