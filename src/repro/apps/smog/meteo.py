"""Synthetic meteorology: time-varying wind fields over the model domain.

The real smog model consumes measured/forecast wind slices; those data
are not available, so we synthesise weather with the right character for
the visualisation pipeline: a steerable zonal base flow plus travelling
cyclones/anticyclones (Rankine-like vortices) that advect across the
domain, giving the strong local fluctuations that motivated bent spots in
section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ApplicationError
from repro.fields.grid import RegularGrid
from repro.fields.vectorfield import VectorField2D
from repro.utils.rng import as_rng


@dataclass
class PressureSystem:
    """One travelling vortex (cyclone if strength > 0)."""

    center: Tuple[float, float]
    strength: float          # tangential speed at the core radius
    core_radius: float
    drift: Tuple[float, float]

    def velocity(self, X: np.ndarray, Y: np.ndarray, t: float) -> "tuple[np.ndarray, np.ndarray]":
        cx = self.center[0] + self.drift[0] * t
        cy = self.center[1] + self.drift[1] * t
        dx = X - cx
        dy = Y - cy
        r = np.hypot(dx, dy)
        safe = np.where(r > 0, r, 1.0)
        # Rankine vortex: solid-body core, 1/r decay outside.
        tangential = np.where(
            r < self.core_radius,
            self.strength * r / self.core_radius,
            self.strength * self.core_radius / safe,
        )
        return -tangential * dy / safe, tangential * dx / safe


class SyntheticMeteorology:
    """Steerable wind-field generator on the model grid.

    Parameters
    ----------
    grid:
        The model grid (53x55 in the paper).
    n_systems:
        Number of travelling pressure systems.
    base_wind:
        Initial zonal (west-to-east) wind speed.
    seed:
        RNG seed for system placement.

    The two steerable knobs the application exposes are
    :attr:`base_wind` (speed) and :attr:`wind_direction` (radians).
    """

    def __init__(
        self,
        grid: RegularGrid,
        n_systems: int = 3,
        base_wind: float = 1.0,
        seed=None,
    ):
        if n_systems < 0:
            raise ApplicationError(f"n_systems must be >= 0, got {n_systems}")
        self.grid = grid
        self.base_wind = float(base_wind)
        self.wind_direction = 0.0
        rng = as_rng(seed)
        x0, x1, y0, y1 = grid.bounds
        w, h = grid.extent
        self.systems: List[PressureSystem] = []
        for _ in range(n_systems):
            self.systems.append(
                PressureSystem(
                    center=(rng.uniform(x0, x1), rng.uniform(y0, y1)),
                    strength=rng.uniform(0.5, 1.5) * rng.choice(np.array([-1.0, 1.0])),
                    core_radius=rng.uniform(0.1, 0.25) * min(w, h),
                    drift=(rng.uniform(0.02, 0.08) * w, rng.uniform(-0.02, 0.02) * h),
                )
            )

    def wind_at(self, t: float) -> VectorField2D:
        """The wind field at time *t* (model time units)."""
        X, Y = self.grid.mesh()
        u = np.full_like(X, self.base_wind * np.cos(self.wind_direction))
        v = np.full_like(Y, self.base_wind * np.sin(self.wind_direction))
        for s in self.systems:
            su, sv = s.velocity(X, Y, t)
            u += su
            v += sv
        return VectorField2D.from_components(self.grid, u, v)
