"""Atmospheric pollution steering application (section 5.1, figure 6).

The paper steers the EUSMOG model of [6]; that model is proprietary CWI/
RIVM code, so this package implements an equivalent substrate (see
DESIGN.md): synthetic European meteorology, point-source emissions, and
an advection-diffusion-reaction pollutant transport model on the same
53x55 grid, steered through the same kind of parameter interface.
"""

from repro.apps.smog.meteo import SyntheticMeteorology
from repro.apps.smog.emissions import EmissionSource, EmissionInventory
from repro.apps.smog.geography import europe_like_landmass, land_mask_raster
from repro.apps.smog.model import SmogModel, SmogModelConfig
from repro.apps.smog.chemistry import ChemistryConfig, PhotochemicalSmogModel
from repro.apps.smog.steering import SteeredSmogApplication

__all__ = [
    "ChemistryConfig",
    "PhotochemicalSmogModel",
    "SyntheticMeteorology",
    "EmissionSource",
    "EmissionInventory",
    "europe_like_landmass",
    "land_mask_raster",
    "SmogModel",
    "SmogModelConfig",
    "SteeredSmogApplication",
]
