"""Emission inventory: steerable pollutant sources.

"The user can control emission ... parameters" [6].  An
:class:`EmissionInventory` is a set of point sources rasterised onto the
model grid each step; a global :attr:`EmissionInventory.scale` knob is
what the steering session exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ApplicationError
from repro.fields.grid import RegularGrid


@dataclass
class EmissionSource:
    """A point source with Gaussian footprint.

    Attributes
    ----------
    position:
        World coordinates.
    rate:
        Emitted concentration units per time unit.
    radius:
        Gaussian footprint radius (world units).
    """

    position: Tuple[float, float]
    rate: float
    radius: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ApplicationError(f"emission rate must be >= 0, got {self.rate}")
        if self.radius <= 0:
            raise ApplicationError(f"emission radius must be > 0, got {self.radius}")


class EmissionInventory:
    """All sources plus a global steerable scale factor."""

    def __init__(self, sources: List[EmissionSource], scale: float = 1.0):
        if scale < 0:
            raise ApplicationError(f"scale must be >= 0, got {scale}")
        self.sources = list(sources)
        self.scale = float(scale)

    def __len__(self) -> int:
        return len(self.sources)

    def add(self, source: EmissionSource) -> None:
        self.sources.append(source)

    def total_rate(self) -> float:
        return self.scale * sum(s.rate for s in self.sources)

    def rasterize(self, grid: RegularGrid) -> np.ndarray:
        """Emission rate field on the grid, ``(ny, nx)``.

        Each source deposits a normalised Gaussian, so the area integral of
        the field equals :meth:`total_rate` regardless of grid resolution.
        """
        X, Y = grid.mesh()
        out = np.zeros(grid.shape, dtype=np.float64)
        cell_area = grid.dx * grid.dy
        for s in self.sources:
            r2 = (X - s.position[0]) ** 2 + (Y - s.position[1]) ** 2
            g = np.exp(-0.5 * r2 / s.radius**2)
            total = g.sum() * cell_area
            if total > 0:
                out += (self.scale * s.rate / total) * g
        return out
