"""The steered smog application: simulation + steering + visualisation.

Binds together everything section 5.1 describes: the 53x55 wind slice,
the pollutant model, a steering session exposing emission/meteorology
parameters, and a frame source suitable for
:class:`~repro.core.animation.AnimationLoop` — each animation frame is
one simulation step whose wind field feeds the spot noise pipeline and
whose O3 field is draped over the texture (figure 6).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

import numpy as np

from repro.apps.smog.emissions import EmissionInventory, EmissionSource
from repro.apps.smog.geography import europe_like_landmass, random_land_points
from repro.apps.smog.meteo import SyntheticMeteorology
from repro.apps.smog.model import SmogModel, SmogModelConfig
from repro.core.steering import SteeringSession
from repro.errors import SteeringError
from repro.fields.grid import RegularGrid
from repro.fields.scalarfield import ScalarField2D
from repro.fields.vectorfield import VectorField2D
from repro.utils.rng import as_rng


class SteeredSmogApplication:
    """The complete §5.1 application with the paper's grid dimensions.

    Parameters
    ----------
    nx, ny:
        Grid size; the paper's slice is 53x55 cells.
    n_sources:
        Emission point sources, sited on land.
    seed:
        Determinism for geography, meteorology and source placement.
    history_limit:
        Wind frames retained for :meth:`read_history` /
        :meth:`texture_service`.  Bounded so a long-running steering
        session cannot grow without limit; the oldest frames are
        evicted first.
    """

    def __init__(
        self,
        nx: int = 53,
        ny: int = 55,
        n_sources: int = 6,
        seed: int = 1997,
        model_config: Optional[SmogModelConfig] = None,
        history_limit: int = 256,
    ):
        self.grid = RegularGrid(nx, ny, (0.0, float(nx), 0.0, float(ny)))
        rng = as_rng(seed)
        self.land = europe_like_landmass(self.grid, seed=seed)
        positions = random_land_points(self.land, self.grid, n_sources, seed=rng)
        sources = [
            EmissionSource(position=(float(p[0]), float(p[1])), rate=1.0, radius=1.5)
            for p in positions
        ]
        self.emissions = EmissionInventory(sources, scale=1.0)
        self.meteo = SyntheticMeteorology(self.grid, n_systems=3, base_wind=1.0, seed=seed + 1)
        self.model = SmogModel(self.grid, self.emissions, self.land, model_config)
        self.dt = 0.25
        self.frame = 0

        self.session = SteeringSession()
        self.session.register("emission_scale", 1.0, 0.0, 10.0, "global emission multiplier")
        self.session.register("base_wind", 1.0, 0.0, 5.0, "zonal wind speed")
        self.session.register("wind_direction", 0.0, -np.pi, np.pi, "mean wind angle (rad)")
        self.session.register(
            "deposition_boost", 1.0, 0.1, 5.0, "multiplier on land deposition"
        )
        self.session.on_change(self._apply)
        self._deposition_boost = 1.0
        if history_limit < 1:
            raise SteeringError(f"history_limit must be >= 1, got {history_limit}")
        #: Wind fields of recent steps — the steering loop's served
        #: history (dashboards re-request recent frames).  Bounded:
        #: ``wind_history[0]`` is absolute frame ``_history_offset``.
        self.wind_history: Deque[VectorField2D] = deque(maxlen=history_limit)
        self._history_offset = 0

    # -- steering plumbing ---------------------------------------------------
    def _apply(self, name: str, value: float) -> None:
        if name == "emission_scale":
            self.emissions.scale = value
        elif name == "base_wind":
            self.meteo.base_wind = value
        elif name == "wind_direction":
            self.meteo.wind_direction = value
        elif name == "deposition_boost":
            self._deposition_boost = value

    def steer(self, name: str, value: float) -> None:
        """User-facing steering entry point (validated and journalled)."""
        self.session.set(name, value)

    # -- simulation loop ---------------------------------------------------------
    def advance(self) -> Tuple[VectorField2D, ScalarField2D]:
        """One coupled simulation step; returns (wind, pollutant)."""
        wind = self.meteo.wind_at(self.frame * self.dt)
        if self._deposition_boost != 1.0:
            base = self.model.config
            self.model.config = SmogModelConfig(
                diffusivity=base.diffusivity,
                deposition_land=base.deposition_land * self._deposition_boost,
                deposition_sea=base.deposition_sea,
                photo_rate=base.photo_rate,
                background=base.background,
                day_length=base.day_length,
            )
            self._deposition_boost = 1.0
        pollutant = self.model.step(wind, self.dt)
        self.frame += 1
        self.session.tick()
        if len(self.wind_history) == self.wind_history.maxlen:
            self._history_offset += 1  # deque drops the oldest frame
        self.wind_history.append(wind)
        return wind, pollutant

    def frame_source(self, t: int) -> Tuple[VectorField2D, ScalarField2D]:
        """Adapter for :class:`~repro.core.animation.AnimationLoop`."""
        return self.advance()

    def read_history(self, frame: int) -> VectorField2D:
        """The wind field of a past simulation step (a served frame).

        *frame* is the absolute step index; frames older than
        ``history_limit`` steps have been evicted.
        """
        end = self._history_offset + len(self.wind_history)
        if frame < self._history_offset:
            raise SteeringError(
                f"frame {frame} evicted from the bounded history "
                f"(oldest retained frame is {self._history_offset})"
            )
        if not (frame < end):
            raise SteeringError(
                f"frame {frame} not in the recorded history "
                f"[{self._history_offset}, {end})"
            )
        return self.wind_history[frame - self._history_offset]

    def texture_service(self, config, **kwargs):
        """A :class:`~repro.service.server.TextureService` over the history.

        The first in-repo steering client of the serving layer: many
        dashboard views re-requesting recent smog frames hit the cache
        instead of re-rendering, and concurrent duplicates coalesce.
        Recorded wind fields are immutable (each :meth:`advance` appends
        a new one), so digest memoisation is safe and stays on.
        """
        from repro.service.server import TextureService

        kwargs.setdefault("memoize_digests", True)
        return TextureService(self.read_history, config, **kwargs)

    def animation_service(self, config, dt: Optional[float] = None, **kwargs):
        """An :class:`~repro.anim.service.AnimationService` over the history.

        Steering *against the stream*: the simulation keeps appending
        wind frames while dashboard clients replay and scrub the session
        as a temporally-coherent animation — spots advect through the
        steered history instead of being re-seeded per frame, so cause
        and effect of a steering action stay visible in the texture.
        Overlapping scrubs join one in-flight render walk, and renders
        resume from the nearest pipeline-state checkpoint instead of
        replaying from frame 0.

        Create the service *early* in a long session: frame identities
        are rolling digests over the field history, memoised as frames
        are first served.  Frames whose digests were never observed
        cannot be keyed once the bounded history evicts them (the
        underlying :class:`~repro.errors.SteeringError` surfaces on
        request), so a service attached after eviction started can only
        serve the surviving window.
        """
        from repro.anim.service import AnimationService

        return AnimationService(self.read_history, config, dt=dt, **kwargs)
