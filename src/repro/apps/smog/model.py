"""Pollutant transport: advection-diffusion-reaction on the model grid.

The substrate for the figure-6 application.  One species (an O3 proxy)
evolves by

    dc/dt + u . grad(c) = D lap(c) + S - k_dep(x) c + k_photo * sun(t) * c_bg

* advection: first-order upwind (unconditionally sign-stable, monotone);
* diffusion: FTCS with the standard stability bound;
* S: the emission inventory rasterised on the grid;
* deposition: faster over land than sea (geography matters);
* photochemistry: a daylight-modulated background production term — a
  deliberately simple stand-in for the real model's chemistry that still
  gives the diurnal cycle steered runs show.

The step size adapts to CFL and diffusion limits by sub-stepping, so
steering the wind to high speeds cannot blow the integration up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ApplicationError
from repro.apps.smog.emissions import EmissionInventory
from repro.fields.grid import RegularGrid
from repro.fields.scalarfield import ScalarField2D
from repro.fields.vectorfield import VectorField2D


@dataclass(frozen=True)
class SmogModelConfig:
    """Physical constants of the transport model."""

    diffusivity: float = 0.002
    deposition_land: float = 0.08
    deposition_sea: float = 0.02
    photo_rate: float = 0.05
    background: float = 0.1
    day_length: float = 24.0

    def __post_init__(self) -> None:
        if self.diffusivity < 0:
            raise ApplicationError("diffusivity must be >= 0")
        if self.deposition_land < 0 or self.deposition_sea < 0:
            raise ApplicationError("deposition rates must be >= 0")
        if self.photo_rate < 0 or self.background < 0:
            raise ApplicationError("photo_rate and background must be >= 0")
        if self.day_length <= 0:
            raise ApplicationError("day_length must be positive")


class SmogModel:
    """Explicit finite-volume pollutant transport on a regular grid."""

    def __init__(
        self,
        grid: RegularGrid,
        emissions: EmissionInventory,
        land_mask: np.ndarray,
        config: Optional[SmogModelConfig] = None,
    ):
        if land_mask.shape != grid.shape:
            raise ApplicationError(
                f"land mask shape {land_mask.shape} != grid shape {grid.shape}"
            )
        self.grid = grid
        self.emissions = emissions
        self.land = np.asarray(land_mask, dtype=bool)
        self.config = config or SmogModelConfig()
        self.concentration = np.zeros(grid.shape, dtype=np.float64)
        self.time = 0.0

    # -- pieces -------------------------------------------------------------
    def deposition_field(self) -> np.ndarray:
        c = self.config
        return np.where(self.land, c.deposition_land, c.deposition_sea)

    def sunlight(self, t: Optional[float] = None) -> float:
        """Diurnal factor in [0, 1] (clipped half-sine)."""
        t = self.time if t is None else t
        return float(max(0.0, np.sin(2.0 * np.pi * t / self.config.day_length)))

    def _stable_substeps(self, wind: VectorField2D, dt: float) -> int:
        """Sub-step count satisfying CFL and diffusion stability."""
        vmax = wind.max_magnitude()
        dx = min(self.grid.dx, self.grid.dy)
        limits = [1.0e30]
        if vmax > 0:
            limits.append(0.8 * dx / vmax)
        if self.config.diffusivity > 0:
            limits.append(0.2 * dx * dx / self.config.diffusivity)
        dt_stable = min(limits)
        return max(1, int(np.ceil(dt / dt_stable)))

    def _advect_upwind(self, c: np.ndarray, u: np.ndarray, v: np.ndarray, dt: float) -> np.ndarray:
        """First-order upwind advection with zero-gradient boundaries."""
        dx, dy = self.grid.dx, self.grid.dy
        # Neighbour shifts with edge replication.
        c_w = np.concatenate([c[:, :1], c[:, :-1]], axis=1)
        c_e = np.concatenate([c[:, 1:], c[:, -1:]], axis=1)
        c_s = np.concatenate([c[:1, :], c[:-1, :]], axis=0)
        c_n = np.concatenate([c[1:, :], c[-1:, :]], axis=0)
        ddx = np.where(u > 0, (c - c_w) / dx, (c_e - c) / dx)
        ddy = np.where(v > 0, (c - c_s) / dy, (c_n - c) / dy)
        return c - dt * (u * ddx + v * ddy)

    def _diffuse(self, c: np.ndarray, dt: float) -> np.ndarray:
        if self.config.diffusivity == 0:
            return c
        dx, dy = self.grid.dx, self.grid.dy
        c_w = np.concatenate([c[:, :1], c[:, :-1]], axis=1)
        c_e = np.concatenate([c[:, 1:], c[:, -1:]], axis=1)
        c_s = np.concatenate([c[:1, :], c[:-1, :]], axis=0)
        c_n = np.concatenate([c[1:, :], c[-1:, :]], axis=0)
        lap = (c_e - 2 * c + c_w) / dx**2 + (c_n - 2 * c + c_s) / dy**2
        return c + dt * self.config.diffusivity * lap

    # -- main step ------------------------------------------------------------
    def step(self, wind: VectorField2D, dt: float = 0.25) -> ScalarField2D:
        """Advance the pollutant field by *dt* under the given wind."""
        if dt <= 0:
            raise ApplicationError(f"dt must be positive, got {dt}")
        if wind.grid.shape != self.grid.shape:
            raise ApplicationError("wind grid does not match model grid")
        n_sub = self._stable_substeps(wind, dt)
        h = dt / n_sub
        u, v = wind.u, wind.v
        source = self.emissions.rasterize(self.grid)
        dep = self.deposition_field()
        cfg = self.config
        c = self.concentration
        for _ in range(n_sub):
            c = self._advect_upwind(c, u, v, h)
            c = self._diffuse(c, h)
            sun = self.sunlight(self.time)
            c = c + h * (source + cfg.photo_rate * sun * cfg.background - dep * c)
            np.maximum(c, 0.0, out=c)
            self.time += h
        self.concentration = c
        return ScalarField2D(self.grid, c.copy())

    def total_mass(self) -> float:
        """Domain-integrated pollutant (conservation diagnostics in tests)."""
        return float(self.concentration.sum() * self.grid.dx * self.grid.dy)
