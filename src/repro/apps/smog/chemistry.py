"""Two-species photochemistry: NOx precursor -> ozone.

The real EUSMOG model [6] steered by the paper simulates photochemical
ozone formation from emitted precursors.  The single-species model in
:mod:`repro.apps.smog.model` treats O3 production as a background term;
this module refines it to the textbook two-species mechanism:

    dNOx/dt + u.grad(NOx) = D lap(NOx) + S        - k_photo sun(t) NOx - dep_n NOx
    dO3/dt  + u.grad(O3)  = D lap(O3)  + y k_photo sun(t) NOx          - dep_o O3

Sources emit the *precursor*; ozone appears only where precursor and
sunlight coexist, displaced downwind — the plume structure figure 6
drapes over the wind texture.  Total "odd oxygen" (NOx/y + O3) is
conserved by the chemistry proper (only emissions add, only deposition
removes), which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.apps.smog.emissions import EmissionInventory
from repro.apps.smog.model import SmogModel, SmogModelConfig
from repro.errors import ApplicationError
from repro.fields.grid import RegularGrid
from repro.fields.scalarfield import ScalarField2D
from repro.fields.vectorfield import VectorField2D


@dataclass(frozen=True)
class ChemistryConfig:
    """Rate constants of the two-species mechanism."""

    photo_rate: float = 0.15      # NOx photolysis rate at full sun
    ozone_yield: float = 1.0      # O3 produced per NOx consumed
    deposition_nox: float = 0.05
    day_length: float = 24.0

    def __post_init__(self) -> None:
        if self.photo_rate < 0 or self.ozone_yield <= 0:
            raise ApplicationError("photo_rate must be >= 0 and ozone_yield > 0")
        if self.deposition_nox < 0:
            raise ApplicationError("deposition_nox must be >= 0")
        if self.day_length <= 0:
            raise ApplicationError("day_length must be positive")


class PhotochemicalSmogModel(SmogModel):
    """Smog model with an explicit NOx precursor species.

    Inherits transport (upwind advection, FTCS diffusion, CFL
    sub-stepping) from :class:`SmogModel`; sources feed NOx, ozone is
    produced photochemically.  ``concentration`` remains the O3 field so
    the visualisation pipeline is unchanged.
    """

    def __init__(
        self,
        grid: RegularGrid,
        emissions: EmissionInventory,
        land_mask: np.ndarray,
        config: Optional[SmogModelConfig] = None,
        chemistry: Optional[ChemistryConfig] = None,
    ):
        base = config or SmogModelConfig(photo_rate=0.0, background=0.0)
        super().__init__(grid, emissions, land_mask, base)
        self.chemistry = chemistry or ChemistryConfig()
        self.nox = np.zeros(grid.shape, dtype=np.float64)

    def sunlight(self, t: Optional[float] = None) -> float:
        t = self.time if t is None else t
        return float(max(0.0, np.sin(2.0 * np.pi * t / self.chemistry.day_length)))

    def step(self, wind: VectorField2D, dt: float = 0.25) -> ScalarField2D:
        """Advance both species by *dt*; returns the O3 field."""
        if dt <= 0:
            raise ApplicationError(f"dt must be positive, got {dt}")
        if wind.grid.shape != self.grid.shape:
            raise ApplicationError("wind grid does not match model grid")
        n_sub = self._stable_substeps(wind, dt)
        h = dt / n_sub
        u, v = wind.u, wind.v
        source = self.emissions.rasterize(self.grid)
        dep_o3 = self.deposition_field()
        chem = self.chemistry

        nox = self.nox
        o3 = self.concentration
        for _ in range(n_sub):
            nox = self._diffuse(self._advect_upwind(nox, u, v, h), h)
            o3 = self._diffuse(self._advect_upwind(o3, u, v, h), h)
            sun = self.sunlight(self.time)
            converted = chem.photo_rate * sun * nox
            nox = nox + h * (source - converted - chem.deposition_nox * nox)
            o3 = o3 + h * (chem.ozone_yield * converted - dep_o3 * o3)
            np.maximum(nox, 0.0, out=nox)
            np.maximum(o3, 0.0, out=o3)
            self.time += h
        self.nox = nox
        self.concentration = o3
        return ScalarField2D(self.grid, o3.copy())

    def fields(self) -> Tuple[ScalarField2D, ScalarField2D]:
        """(NOx, O3) as scalar fields for side-by-side display."""
        return (
            ScalarField2D(self.grid, self.nox.copy()),
            ScalarField2D(self.grid, self.concentration.copy()),
        )

    def odd_oxygen_mass(self) -> float:
        """Domain integral of yield*NOx + O3 — conserved by the chemistry.

        Converting dNOx of precursor produces ``yield * dNOx`` of ozone, so
        ``yield * NOx + O3`` changes only through emissions and deposition.
        """
        cell = self.grid.dx * self.grid.dy
        return float(
            (self.chemistry.ozone_yield * self.nox + self.concentration).sum() * cell
        )
