"""Poisson solvers for the projection step.

The production path is the FFT solver (exact for the discrete spectral
Laplacian on the periodic domain, O(N log N)); a red-black SOR solver is
provided as an independent reference so the tests can cross-validate the
two on the same right-hand sides.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ApplicationError


def spectral_wavenumbers(
    ny: int, nx: int, dx: float, dy: float, zero_nyquist: bool = True
) -> "tuple[np.ndarray, np.ndarray]":
    """(ky, kx) wavenumber grids for ``rfft2`` layouts.

    With *zero_nyquist* the Nyquist wavenumbers are zeroed: first
    derivatives of the (cosine-only) Nyquist mode are not representable on
    the grid, and letting ``1j * k_nyq`` act on it produces coefficients
    that violate the Hermitian symmetry of a real field — the projected
    velocity would silently lose its divergence correction in
    ``irfft2``.  Zeroing is the standard pseudo-spectral treatment for
    odd-order derivatives.
    """
    ky = 2.0 * np.pi * np.fft.fftfreq(ny, d=dy)[:, None]
    kx = 2.0 * np.pi * np.fft.rfftfreq(nx, d=dx)[None, :]
    if zero_nyquist:
        ky = ky.copy()
        kx = kx.copy()
        if ny % 2 == 0:
            ky[ny // 2, 0] = 0.0
        if nx % 2 == 0:
            kx[0, -1] = 0.0
    return ky, kx


def solve_poisson_periodic(rhs: np.ndarray, dx: float, dy: float) -> np.ndarray:
    """Solve ``lap(p) = rhs`` on a fully periodic grid via FFT.

    The mean of *rhs* is projected out (a periodic Poisson problem is only
    solvable for zero-mean right-hand sides; the discarded constant is the
    pressure gauge) and the solution is returned with zero mean.
    Differentiation uses the exact spectral Laplacian eigenvalues
    ``-k^2``; the projection in the solver uses matching spectral
    gradients, so the projected field is divergence-free to round-off.
    """
    f = np.asarray(rhs, dtype=np.float64)
    if f.ndim != 2:
        raise ApplicationError(f"rhs must be 2-D, got shape {f.shape}")
    if dx <= 0 or dy <= 0:
        raise ApplicationError("grid spacings must be positive")
    ny, nx = f.shape
    fhat = np.fft.rfft2(f - f.mean())
    ky = 2.0 * np.pi * np.fft.fftfreq(ny, d=dy)[:, None]
    kx = 2.0 * np.pi * np.fft.rfftfreq(nx, d=dx)[None, :]
    k2 = kx**2 + ky**2
    k2[0, 0] = 1.0  # gauge mode; numerator is zero there after de-meaning
    phat = fhat / (-k2)
    phat[0, 0] = 0.0
    return np.fft.irfft2(phat, s=f.shape)


def solve_poisson_sor(
    rhs: np.ndarray,
    dx: float,
    dy: float,
    tol: float = 1e-8,
    max_iters: int = 20000,
    omega: "float | None" = None,
) -> np.ndarray:
    """Red-black SOR solution of the 5-point periodic Poisson problem.

    Slow; exists purely as an independent check on the FFT solver (the
    two discretisations differ — spectral vs 5-point — so agreement is
    asserted on smooth right-hand sides where both converge to the same
    continuum solution).
    """
    f = np.asarray(rhs, dtype=np.float64)
    if f.ndim != 2:
        raise ApplicationError(f"rhs must be 2-D, got shape {f.shape}")
    if tol <= 0:
        raise ApplicationError("tol must be positive")
    ny, nx = f.shape
    f = f - f.mean()
    p = np.zeros_like(f)
    if omega is None:
        # Standard optimal SOR estimate for the Laplacian on an nx x ny grid.
        rho = (np.cos(np.pi / nx) + (dx / dy) ** 2 * np.cos(np.pi / ny)) / (1.0 + (dx / dy) ** 2)
        omega = 2.0 / (1.0 + np.sqrt(max(0.0, 1.0 - rho**2)))
    ax = 1.0 / dx**2
    ay = 1.0 / dy**2
    ap = 2.0 * (ax + ay)

    Y, X = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    red = ((X + Y) % 2) == 0
    black = ~red

    for iteration in range(max_iters):
        for mask in (red, black):
            nb = (
                ax * (np.roll(p, 1, axis=1) + np.roll(p, -1, axis=1))
                + ay * (np.roll(p, 1, axis=0) + np.roll(p, -1, axis=0))
            )
            gs = (nb - f) / ap
            p[mask] = (1.0 - omega) * p[mask] + omega * gs[mask]
        # Residual of the 5-point operator.
        lap = (
            ax * (np.roll(p, 1, axis=1) - 2 * p + np.roll(p, -1, axis=1))
            + ay * (np.roll(p, 1, axis=0) - 2 * p + np.roll(p, -1, axis=0))
        )
        res = np.abs(lap - f).max()
        if res < tol:
            break
    return p - p.mean()


def divergence(u: np.ndarray, v: np.ndarray, dx: float, dy: float) -> np.ndarray:
    """Spectral divergence on the periodic grid (diagnostics and tests).

    Uses the same Nyquist-zeroed derivative convention as the projection,
    so a projected field measures divergence-free to round-off.
    """
    ny, nx = u.shape
    ky, kx = spectral_wavenumbers(ny, nx, dx, dy)
    du = np.fft.irfft2(1j * kx * np.fft.rfft2(u), s=u.shape)
    dv = np.fft.irfft2(1j * ky * np.fft.rfft2(v), s=v.shape)
    return du + dv
