"""Chunked on-disk time-series store for DNS slices.

"A few weeks of computing can easily produce a few terabytes of data.  A
data browser is being developed to analyse such scientific data bases"
(section 5.2).  This store is that database substrate at laptop scale:
frames are appended sequentially, packed into fixed-size chunk files
(compressed ``.npz``), random access loads exactly one chunk, and a
one-chunk LRU cache makes sequential playback and local scrubbing cheap —
the access patterns a browser generates.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import StoreError
from repro.fields.grid import RectilinearGrid
from repro.fields.vectorfield import VectorField2D
from repro.utils.fileio import atomic_write

_META_NAME = "meta.json"
_FORMAT_VERSION = 1


class ChunkedFieldStore:
    """Append-only chunked store of vector-field frames on one grid.

    Parameters
    ----------
    directory:
        Store location (created if missing when *create* is used).
    """

    def __init__(self, directory: "str | os.PathLike"):
        self.directory = os.fspath(directory)
        meta_path = os.path.join(self.directory, _META_NAME)
        if not os.path.exists(meta_path):
            raise StoreError(
                f"{self.directory} is not a field store (no {_META_NAME}); "
                "use ChunkedFieldStore.create(...)"
            )
        with open(meta_path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
        if meta.get("format_version") != _FORMAT_VERSION:
            raise StoreError(f"unsupported store format {meta.get('format_version')}")
        self.frames_per_chunk = int(meta["frames_per_chunk"])
        self.n_frames = int(meta["n_frames"])
        self.times: List[float] = [float(t) for t in meta["times"]]
        self.grid = RectilinearGrid(np.asarray(meta["x"]), np.asarray(meta["y"]))
        self._pending: List[np.ndarray] = []
        self._pending_times: List[float] = []
        self._cache_index: Optional[int] = None  #: guarded-by: _cache_lock
        self._cache_data: Optional[np.ndarray] = None  #: guarded-by: _cache_lock
        # The chunk cache is read from texture-service worker threads
        # (TextureService.for_store); guard the check-then-set so a race
        # can never pair one chunk's index with another chunk's data.
        self._cache_lock = threading.Lock()

    # -- creation ----------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: "str | os.PathLike",
        grid: RectilinearGrid,
        frames_per_chunk: int = 16,
    ) -> "ChunkedFieldStore":
        """Initialise an empty store for fields on *grid*."""
        if frames_per_chunk < 1:
            raise StoreError(f"frames_per_chunk must be >= 1, got {frames_per_chunk}")
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        meta_path = os.path.join(directory, _META_NAME)
        if os.path.exists(meta_path):
            raise StoreError(f"store already exists at {directory}")
        meta = {
            "format_version": _FORMAT_VERSION,
            "frames_per_chunk": frames_per_chunk,
            "n_frames": 0,
            "times": [],
            "x": [float(v) for v in grid.x],
            "y": [float(v) for v in grid.y],
        }
        atomic_write(meta_path, lambda fh: fh.write(json.dumps(meta).encode("utf-8")))
        return cls(directory)

    # -- write path ----------------------------------------------------------------
    def append(self, field: VectorField2D, time: float = 0.0) -> int:
        """Append one frame; returns its frame index.  Call :meth:`flush` last."""
        if field.grid.shape != self.grid.shape:
            raise StoreError(
                f"frame shape {field.grid.shape} != store grid shape {self.grid.shape}"
            )
        self._pending.append(np.asarray(field.data, dtype=np.float32))
        self._pending_times.append(float(time))
        index = self.n_frames
        self.n_frames += 1
        self.times.append(float(time))
        if len(self._pending) == self.frames_per_chunk:
            self._write_pending()
        self._write_meta()
        return index

    def flush(self) -> None:
        """Write any buffered partial chunk to disk."""
        if self._pending:
            self._write_pending()
            self._write_meta()

    def _chunk_path(self, chunk_index: int) -> str:
        return os.path.join(self.directory, f"chunk_{chunk_index:06d}.npz")

    def _write_pending(self) -> None:
        first_frame = self.n_frames - len(self._pending)
        chunk_index = first_frame // self.frames_per_chunk
        if first_frame % self.frames_per_chunk != 0:
            raise StoreError("internal error: pending frames not chunk-aligned")
        # Atomic: a crash mid-write must leave either no chunk file or a
        # complete one — a truncated .npz would turn every later read of
        # this chunk into a StoreError.
        frames = np.stack(self._pending, axis=0)
        atomic_write(
            self._chunk_path(chunk_index),
            lambda fh: np.savez_compressed(fh, frames=frames),
        )
        self._pending.clear()
        self._pending_times.clear()
        # Invalidate the cache in case this chunk was read while partial.
        with self._cache_lock:
            self._cache_index = None
            self._cache_data = None

    def _write_meta(self) -> None:
        meta = {
            "format_version": _FORMAT_VERSION,
            "frames_per_chunk": self.frames_per_chunk,
            "n_frames": self.n_frames,
            "times": self.times,
            "x": [float(v) for v in self.grid.x],
            "y": [float(v) for v in self.grid.y],
        }
        atomic_write(
            os.path.join(self.directory, _META_NAME),
            lambda fh: fh.write(json.dumps(meta).encode("utf-8")),
        )

    # -- read path -------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_frames

    def _load_chunk(self, chunk_index: int) -> np.ndarray:
        with self._cache_lock:
            if self._cache_index == chunk_index and self._cache_data is not None:
                return self._cache_data
        path = self._chunk_path(chunk_index)
        if not os.path.exists(path):
            raise StoreError(f"missing chunk file {path} (unflushed frames?)")
        with np.load(path) as archive:
            data = archive["frames"]
        with self._cache_lock:
            self._cache_index = chunk_index
            self._cache_data = data
        return data

    def read(self, frame: int) -> VectorField2D:
        """Random access to any frame (loads and caches one chunk)."""
        if not (0 <= frame < self.n_frames):
            raise StoreError(f"frame {frame} out of range [0, {self.n_frames})")
        chunk_index, offset = divmod(frame, self.frames_per_chunk)
        # Frames still buffered in memory:
        n_flushed = self.n_frames - len(self._pending)
        if frame >= n_flushed:
            data = self._pending[frame - n_flushed]
            return VectorField2D(self.grid, np.asarray(data, dtype=np.float64))
        chunk = self._load_chunk(chunk_index)
        return VectorField2D(self.grid, np.asarray(chunk[offset], dtype=np.float64))

    def iter_range(self, start: int = 0, stop: Optional[int] = None, stride: int = 1) -> Iterator[VectorField2D]:
        """Sequential playback over ``[start, stop)`` with *stride*."""
        if stride < 1:
            raise StoreError(f"stride must be >= 1, got {stride}")
        stop = self.n_frames if stop is None else min(stop, self.n_frames)
        for t in range(start, stop, stride):
            yield self.read(t)

    def nbytes_on_disk(self) -> int:
        """Total chunk bytes — the 'terabytes' metric, at laptop scale."""
        total = 0
        for name in os.listdir(self.directory):
            if name.startswith("chunk_"):
                total += os.path.getsize(os.path.join(self.directory, name))
        return total
