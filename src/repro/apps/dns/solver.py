"""2-D incompressible Navier-Stokes: flow past a block.

A pseudo-spectral projection solver on a periodic rectangle:

1. explicit advection + diffusion step (2nd-order central differences,
   RK2 in time, CFL-adaptive sub-steps);
2. implicit Brinkman penalisation inside the block (exact for the linear
   drag term, hence unconditionally stable);
3. fringe-region relaxation to the free stream before the periodic wrap;
4. FFT pressure projection to divergence-free.

At the default Reynolds number (~150 based on block height) the wake
sheds vortices — the von Karman street of figure 7 — and at higher Re
the downstream wake becomes irregular, reproducing the laminar-to-
turbulent transition the browser application studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.dns.obstacle import block_mask, fringe_mask
from repro.errors import ApplicationError
from repro.fields.grid import RegularGrid
from repro.fields.vectorfield import VectorField2D
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class DNSConfig:
    """Solver parameters.

    The default domain is 4 x 3 (block height 0.45 at x=1) on the paper's
    278x208 grid; ``reynolds`` is based on free-stream speed and block
    height.
    """

    nx: int = 278
    ny: int = 208
    domain: "tuple[float, float]" = (4.0, 3.0)
    u_inflow: float = 1.0
    reynolds: float = 150.0
    block_center: "tuple[float, float]" = (1.0, 1.5)
    block_width: float = 0.3
    block_height: float = 0.45
    penalization_eta: float = 5.0e-3
    fringe_fraction: float = 0.12
    fringe_strength: float = 8.0
    cfl: float = 0.35
    seed: int = 42

    def __post_init__(self) -> None:
        if self.nx < 16 or self.ny < 16:
            raise ApplicationError("grid must be at least 16x16")
        if self.u_inflow <= 0:
            raise ApplicationError("u_inflow must be positive")
        if self.reynolds <= 0:
            raise ApplicationError("reynolds must be positive")
        if self.penalization_eta <= 0:
            raise ApplicationError("penalization_eta must be positive")
        if not (0.0 < self.cfl < 1.0):
            raise ApplicationError("cfl must be in (0, 1)")

    @property
    def viscosity(self) -> float:
        return self.u_inflow * self.block_height / self.reynolds


class DNSSolver:
    """Time-steps the flow and emits :class:`VectorField2D` slices."""

    def __init__(self, config: Optional[DNSConfig] = None):
        self.config = config or DNSConfig()
        c = self.config
        lx, ly = c.domain
        self.grid = RegularGrid(c.nx, c.ny, (0.0, lx, 0.0, ly))
        # Periodic spacing: nx nodes represent nx distinct columns.
        self.dx = lx / c.nx
        self.dy = ly / c.ny
        self.chi = block_mask(self.grid, c.block_center, c.block_width, c.block_height)
        self.fringe = fringe_mask(self.grid, c.fringe_fraction, c.fringe_strength)
        self.u = np.full(self.grid.shape, c.u_inflow, dtype=np.float64)
        self.v = np.zeros(self.grid.shape, dtype=np.float64)
        # Seed asymmetry so shedding starts without waiting for round-off.
        rng = as_rng(c.seed)
        self.v += 0.02 * c.u_inflow * rng.standard_normal(self.grid.shape)
        self.time = 0.0
        self.step_count = 0
        self._project()

    # -- spatial operators (periodic central differences) ---------------------
    def _ddx(self, f: np.ndarray) -> np.ndarray:
        return (np.roll(f, -1, axis=1) - np.roll(f, 1, axis=1)) / (2.0 * self.dx)

    def _ddy(self, f: np.ndarray) -> np.ndarray:
        return (np.roll(f, -1, axis=0) - np.roll(f, 1, axis=0)) / (2.0 * self.dy)

    def _lap(self, f: np.ndarray) -> np.ndarray:
        return (
            (np.roll(f, -1, axis=1) - 2 * f + np.roll(f, 1, axis=1)) / self.dx**2
            + (np.roll(f, -1, axis=0) - 2 * f + np.roll(f, 1, axis=0)) / self.dy**2
        )

    def _rhs(self, u: np.ndarray, v: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        nu = self.config.viscosity
        du = -u * self._ddx(u) - v * self._ddy(u) + nu * self._lap(u)
        dv = -u * self._ddx(v) - v * self._ddy(v) + nu * self._lap(v)
        return du, dv

    def _project(self) -> None:
        """Make (u, v) divergence-free via the FFT Poisson solve."""
        from repro.apps.dns.poisson import spectral_wavenumbers

        ny, nx = self.grid.shape
        ky, kx = spectral_wavenumbers(ny, nx, self.dx, self.dy)
        k2 = kx**2 + ky**2
        k2[0, 0] = 1.0
        k2[k2 == 0.0] = 1.0  # zeroed Nyquist modes: no correction applied
        uhat = np.fft.rfft2(self.u)
        vhat = np.fft.rfft2(self.v)
        div = 1j * kx * uhat + 1j * ky * vhat
        # Solve lap(chi) = div, i.e. chi_hat = div_hat / (-k2), and subtract
        # grad(chi): u <- u - i k chi.
        phi = div / (-k2)
        phi[0, 0] = 0.0
        self.u = np.fft.irfft2(uhat - 1j * kx * phi, s=(ny, nx))
        self.v = np.fft.irfft2(vhat - 1j * ky * phi, s=(ny, nx))

    def _stable_dt(self) -> float:
        c = self.config
        vmax = max(float(np.abs(self.u).max()), float(np.abs(self.v).max()), 1e-9)
        adv = c.cfl * min(self.dx, self.dy) / vmax
        diff = 0.2 * min(self.dx, self.dy) ** 2 / max(c.viscosity, 1e-12)
        return min(adv, diff)

    # -- time stepping ---------------------------------------------------------
    def step(self, dt: Optional[float] = None) -> None:
        """Advance one time step (auto-sized unless *dt* is forced)."""
        c = self.config
        h = self._stable_dt() if dt is None else float(dt)
        if h <= 0:
            raise ApplicationError(f"dt must be positive, got {h}")

        # RK2 advection-diffusion.
        du1, dv1 = self._rhs(self.u, self.v)
        u_mid = self.u + 0.5 * h * du1
        v_mid = self.v + 0.5 * h * dv1
        du2, dv2 = self._rhs(u_mid, v_mid)
        u_star = self.u + h * du2
        v_star = self.v + h * dv2

        # Implicit Brinkman penalisation (block) and fringe relaxation.
        pen = 1.0 + h * self.chi / c.penalization_eta
        u_star = u_star / pen
        v_star = v_star / pen
        relax = h * self.fringe
        u_star = (u_star + relax * c.u_inflow) / (1.0 + relax)
        v_star = v_star / (1.0 + relax)

        self.u, self.v = u_star, v_star
        self._project()
        self.time += h
        self.step_count += 1

    def advance_to(self, t_end: float, max_steps: int = 100000) -> int:
        """Step until ``time >= t_end``; returns steps taken."""
        steps = 0
        while self.time < t_end and steps < max_steps:
            self.step()
            steps += 1
        return steps

    # -- outputs -------------------------------------------------------------
    def field(self) -> VectorField2D:
        """Current velocity slice as a visualisation-ready field."""
        data = np.stack([self.u, self.v], axis=-1)
        return VectorField2D(self.grid, data.copy())

    def max_divergence(self) -> float:
        """Spectral divergence magnitude (should be ~round-off after projection)."""
        from repro.apps.dns.poisson import divergence

        return float(np.abs(divergence(self.u, self.v, self.dx, self.dy)).max())

    def kinetic_energy(self) -> float:
        return float(0.5 * (self.u**2 + self.v**2).mean())
