"""The data browser.

"In contrast to prerecorded video sequences, the data browser allows the
user to first select visualization mappings and then play through any
part of the data base" (section 5.2).  A
:class:`VisualizationMapping` chooses what scalar (if any) is draped over
the spot noise texture; :class:`DataBrowser` binds a mapping to a
:class:`~repro.apps.dns.store.ChunkedFieldStore` and yields frames for
the animation loop, supporting random seeks and strided playback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Union

from repro.apps.dns.store import ChunkedFieldStore
from repro.errors import ApplicationError
from repro.fields.derived import (
    magnitude_field,
    okubo_weiss_field,
    vorticity_field,
)
from repro.fields.scalarfield import ScalarField2D
from repro.fields.vectorfield import VectorField2D

_SCALAR_MAPPINGS: "dict[str, Callable[[VectorField2D], ScalarField2D]]" = {
    "vorticity": vorticity_field,
    "speed": magnitude_field,
    "okubo_weiss": okubo_weiss_field,
}


@dataclass(frozen=True)
class VisualizationMapping:
    """What the browser shows: flow texture plus an optional scalar drape."""

    scalar: Optional[str] = "vorticity"
    colormap: str = "diverging"

    def __post_init__(self) -> None:
        if self.scalar is not None and self.scalar not in _SCALAR_MAPPINGS:
            raise ApplicationError(
                f"unknown scalar mapping {self.scalar!r}; "
                f"available: {sorted(_SCALAR_MAPPINGS)} or None"
            )

    def derive(self, field: VectorField2D) -> Optional[ScalarField2D]:
        if self.scalar is None:
            return None
        return _SCALAR_MAPPINGS[self.scalar](field)


class DataBrowser:
    """Random-access playback over a stored DNS database."""

    def __init__(self, store: ChunkedFieldStore, mapping: Optional[VisualizationMapping] = None):
        self.store = store
        self.mapping = mapping or VisualizationMapping()
        self.position = 0

    def __len__(self) -> int:
        return len(self.store)

    def select_mapping(self, mapping: VisualizationMapping) -> None:
        """Change the visualisation mapping (step 1 of the browser workflow)."""
        self.mapping = mapping

    def seek(self, frame: int) -> None:
        if not (0 <= frame < len(self.store)):
            raise ApplicationError(f"seek {frame} out of range [0, {len(self.store)})")
        self.position = frame

    def current(self) -> "tuple[VectorField2D, Optional[ScalarField2D]]":
        field = self.store.read(self.position)
        return field, self.mapping.derive(field)

    def play(
        self, start: Optional[int] = None, stop: Optional[int] = None, stride: int = 1
    ) -> Iterator["tuple[VectorField2D, Optional[ScalarField2D]]"]:
        """Play through any part of the database (step 2 of the workflow)."""
        start = self.position if start is None else start
        stop = len(self.store) if stop is None else stop
        if stride < 1:
            raise ApplicationError(f"stride must be >= 1, got {stride}")
        for t in range(start, min(stop, len(self.store)), stride):
            self.position = t
            yield self.current()

    def frame_source(self, t: int) -> Union[VectorField2D, "tuple[VectorField2D, ScalarField2D]"]:
        """Adapter for :class:`~repro.core.animation.AnimationLoop`.

        Plays forward from the current position with wraparound, so an
        animation of N frames can start anywhere in the database.
        """
        index = (self.position + t) % max(len(self.store), 1)
        field = self.store.read(index)
        scalar = self.mapping.derive(field)
        return field if scalar is None else (field, scalar)

    def texture_service(self, config, **kwargs):
        """A :class:`~repro.service.server.TextureService` over this store.

        Many browsers (or many users of one browser) scrubbing the same
        database repeat the same frames constantly; serving the flow
        textures through the cache-and-coalesce layer renders each
        distinct slice once.  Store frames are immutable once flushed,
        so digests are memoised.  The service serves the grayscale spot
        noise texture only — scalar drapes stay per-client (they are a
        cheap colormap pass over the served texture).
        """
        from repro.service.server import TextureService

        return TextureService.for_store(self.store, config, **kwargs)

    def animation_service(
        self,
        config,
        dt: Optional[float] = None,
        delta_every: Optional[int] = 0,
        **kwargs,
    ):
        """An :class:`~repro.anim.service.AnimationService` over this store.

        Scrubbing the database as an *animation*: frames come from one
        particle population advecting through the stored time series, so
        playback is temporally coherent (the paper's animated browsing,
        not independent stills).  Use :meth:`scrub` for the common
        drag-the-slider access pattern; concurrent overlapping scrubs
        coalesce onto a single incremental render walk.

        The delta frame transport is on by default (*delta_every=0*,
        cost-model-priced keyframe cadence): scrubbed frames are
        delta-encoded into a digest-addressed chunk store, so revisited
        frames decode from chunks already shipped instead of
        re-requesting whole textures — the bandwidth layer for browsing
        at scale.  Pass ``delta_every=None`` to disable, or an explicit
        cadence K.
        """
        from repro.anim.service import AnimationService

        return AnimationService.for_store(
            self.store, config, dt=dt, delta_every=delta_every, **kwargs
        )

    def scrub(self, service, start: int, stop: Optional[int] = None, stride: int = 1):
        """Play ``[start, stop)`` through an animation *service*.

        The streaming analogue of :meth:`play`: yields
        ``(FrameResponse, scalar_or_None)`` pairs, deriving this
        browser's scalar drape per frame client-side (drapes are a cheap
        colormap pass; only the flow texture is worth caching).  The
        browser's position follows the scrub, like :meth:`play`.
        """
        stop = len(self.store) if stop is None else stop
        if stride < 1:
            raise ApplicationError(f"stride must be >= 1, got {stride}")
        if not (0 <= start < len(self.store)) or stop > len(self.store):
            raise ApplicationError(
                f"scrub range [{start}, {stop}) outside the database "
                f"[0, {len(self.store)})"
            )
        for t in range(start, stop, stride):
            self.position = t
            response = service.request(t)
            scalar = self.mapping.derive(self.store.read(t))
            yield response, scalar
