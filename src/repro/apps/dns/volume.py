"""Space-time volumes: treating the stored time series as a 3-D data set.

The paper browses "a slice from the three dimensional data set".  For a
2-D time series the natural 3-D object is the space-time volume
``(t, y, x)``: a z-slice is one time step (what the browser plays), a
y- or x-slice is a *time line* — the evolution of one spatial line,
which is how vortex-shedding periodicity becomes visible as stripes.
"""

from __future__ import annotations

import numpy as np

from repro.apps.dns.store import ChunkedFieldStore
from repro.errors import ApplicationError
from repro.fields.slices import Dataset3D, SliceSpec
from repro.fields.vectorfield import VectorField2D


def space_time_volume(
    store: ChunkedFieldStore,
    start: int = 0,
    stop: "int | None" = None,
    stride: int = 1,
) -> Dataset3D:
    """Stack stored frames into a ``(nt, ny, nx, 3)`` volume.

    The in-plane components are the stored ``(u, v)``; the out-of-plane
    component is zero (a 2-D data set has no w), so z-slices reproduce the
    stored fields exactly and x/y slices show ``(u or v)`` against time.
    The time axis is mapped to the volume's z extent using the stored
    frame times.
    """
    stop = len(store) if stop is None else min(stop, len(store))
    frames = list(range(start, stop, stride))
    if len(frames) < 2:
        raise ApplicationError("need at least 2 frames for a space-time volume")
    ny, nx = store.grid.shape
    data = np.zeros((len(frames), ny, nx, 3), dtype=np.float64)
    for k, t in enumerate(frames):
        data[k, :, :, :2] = store.read(t).data
    x0, x1, y0, y1 = store.grid.bounds
    t_lo = store.times[frames[0]]
    t_hi = store.times[frames[-1]]
    if not t_hi > t_lo:
        t_lo, t_hi = 0.0, float(len(frames) - 1)
    return Dataset3D(data, bounds=(x0, x1, y0, y1, t_lo, t_hi))


class SliceBrowser:
    """Navigate axis-aligned slices of a 3-D data set.

    Mirrors the 2-D browser's workflow: pick an axis, scrub the index,
    get a :class:`VectorField2D` ready for the spot noise pipeline.
    """

    def __init__(self, volume: Dataset3D, axis: str = "z", index: int = 0):
        self.volume = volume
        self._spec = SliceSpec(axis, index)  # validates axis/index >= 0
        if index >= volume.axis_size(axis):  # and the upper bound
            raise ApplicationError(
                f"index {index} out of range for axis {axis!r} "
                f"(size {volume.axis_size(axis)})"
            )

    @property
    def axis(self) -> str:
        return self._spec.axis

    @property
    def index(self) -> int:
        return self._spec.index

    def select_axis(self, axis: str) -> None:
        """Switch slicing axis, clamping the index to the new range."""
        size = self.volume.axis_size(axis)  # raises on a bad axis via dict
        self._spec = SliceSpec(axis, min(self.index, size - 1))

    def seek(self, index: int) -> None:
        size = self.volume.axis_size(self.axis)
        if not (0 <= index < size):
            raise ApplicationError(f"index {index} out of range [0, {size})")
        self._spec = SliceSpec(self.axis, index)

    def step(self, delta: int = 1) -> int:
        """Move the slice index by *delta* with wraparound; returns new index."""
        size = self.volume.axis_size(self.axis)
        self._spec = SliceSpec(self.axis, (self.index + delta) % size)
        return self.index

    def current(self) -> VectorField2D:
        return self.volume.slice(self._spec)

    def sweep(self):
        """Yield every slice along the current axis, in order."""
        for i in range(self.volume.axis_size(self.axis)):
            yield self.volume.slice(SliceSpec(self.axis, i))
