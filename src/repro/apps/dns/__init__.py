"""Direct numerical simulation application (section 5.2, figure 7).

The paper browses a terabyte database produced by the DNS code of
Verstappen & Veldman [7] — flow around a block, vortex shedding, laminar
to turbulent transition.  That database does not exist here, so this
package *computes* an equivalent one at laptop scale: a 2-D
incompressible Navier-Stokes solver (FFT projection method with Brinkman
penalisation for the block and a fringe region emulating in/outflow on a
periodic domain) generates time slices on the paper's 278x208 grid,
which are recorded in a chunked on-disk store and explored through a
browser that mirrors the paper's "select mappings, then play through any
part of the data base" workflow.
"""

from repro.apps.dns.poisson import solve_poisson_periodic, solve_poisson_sor
from repro.apps.dns.obstacle import block_mask, fringe_mask
from repro.apps.dns.solver import DNSSolver, DNSConfig
from repro.apps.dns.store import ChunkedFieldStore
from repro.apps.dns.browser import DataBrowser, VisualizationMapping
from repro.apps.dns.volume import SliceBrowser, space_time_volume

__all__ = [
    "solve_poisson_periodic",
    "solve_poisson_sor",
    "block_mask",
    "fringe_mask",
    "DNSSolver",
    "DNSConfig",
    "ChunkedFieldStore",
    "DataBrowser",
    "VisualizationMapping",
    "SliceBrowser",
    "space_time_volume",
]
