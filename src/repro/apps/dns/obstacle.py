"""Obstacle and boundary-emulation masks.

The block is embedded by Brinkman penalisation: inside the mask the
momentum equation gets a strong drag ``-chi/eta * u`` driving velocity to
zero — no body-fitted mesh needed, which is why penalisation is the
standard trick for immersed obstacles in spectral solvers.

The domain is periodic (the FFT projection requires it) but the physical
problem has an inflow; a *fringe region* near the outflow edge relaxes
the flow back to the free stream before it wraps around, emulating
in/outflow on a periodic box — the established fringe/sponge technique
for spatially developing flows in periodic codes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ApplicationError
from repro.fields.grid import RegularGrid


def block_mask(
    grid: RegularGrid,
    center: "tuple[float, float]",
    width: float,
    height: float,
    smooth_cells: float = 1.0,
) -> np.ndarray:
    """Smoothed indicator of a rectangular block, values in [0, 1].

    A sharp indicator excites spurious oscillations in spectral solvers;
    the edge is smoothed over *smooth_cells* grid cells with a tanh
    profile instead.
    """
    if width <= 0 or height <= 0:
        raise ApplicationError(f"block must have positive size, got {width}x{height}")
    if smooth_cells < 0:
        raise ApplicationError("smooth_cells must be >= 0")
    X, Y = grid.mesh()
    eps = max(smooth_cells * max(grid.dx, grid.dy), 1e-12)

    def smooth_box(d: np.ndarray, half: float) -> np.ndarray:
        return 0.5 * (1.0 + np.tanh((half - np.abs(d)) / eps))

    return smooth_box(X - center[0], width / 2.0) * smooth_box(Y - center[1], height / 2.0)


def fringe_mask(grid: RegularGrid, fraction: float = 0.12, strength: float = 8.0) -> np.ndarray:
    """Relaxation-rate field, non-zero in the fringe strip at the domain end.

    The strip occupies the last *fraction* of the x-extent; the rate ramps
    smoothly from 0 to *strength* and back so the forcing itself stays
    smooth.
    """
    if not (0.0 < fraction < 0.5):
        raise ApplicationError(f"fraction must be in (0, 0.5), got {fraction}")
    if strength <= 0:
        raise ApplicationError("strength must be positive")
    X, _ = grid.mesh()
    x0, x1, _, _ = grid.bounds
    start = x1 - fraction * (x1 - x0)
    t = np.clip((X - start) / (x1 - start), 0.0, 1.0)
    # Smooth bump: rises to max at the middle of the strip, falls at the end
    # (so the wrap-around point sees small forcing gradients).
    return strength * np.sin(np.pi * t) ** 2
