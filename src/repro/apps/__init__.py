"""Driving applications of the paper (section 5).

Two applications motivated interactive spot noise and provide the
evaluation workloads:

* :mod:`repro.apps.smog` — computational steering of an atmospheric
  pollution model [6]: a 53x55 wind-field slice with pollutant transport,
  steerable emission/meteorology/geography parameters (§5.1, figure 6);
* :mod:`repro.apps.dns` — browsing a direct-numerical-simulation
  database [7]: a 2-D turbulent wake behind a block on a 278x208 grid,
  stored as a chunked time series (§5.2, figure 7).
"""
