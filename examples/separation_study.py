#!/usr/bin/env python
"""The figure-2 separation study: steering spot parameters.

Renders the same separation-line flow twice — once with default spot
noise parameters and once with advected spot positions — and reports how
strongly each rendering concentrates texture evidence on the separation
line.  This is the "adjusting parameters ... provides the user with a
mechanism to highlight certain aspects of the flow" workflow of figure 2.

Run:  python examples/separation_study.py
"""

import os

import numpy as np

from repro import SpotNoiseConfig
from repro.advection import LifeCyclePolicy
from repro.core import SpotNoisePipeline
from repro.fields import separation_field
from repro.viz import write_pgm

HERE = os.path.dirname(os.path.abspath(__file__))


def band_fraction(texture: np.ndarray, half_width: int = 32) -> float:
    """Share of squared texture intensity within the separation band."""
    t = np.asarray(texture) ** 2
    mid = t.shape[0] // 2
    return float(t[mid - half_width : mid + half_width].sum() / t.sum())


def main() -> None:
    field = separation_field(line_y=0.0, strength=1.5, along=0.5, n=65)
    config = SpotNoiseConfig(
        n_spots=4000, texture_size=256, spot_mode="standard", anisotropy=1.5, seed=3
    )

    # Default parameters: static spot positions (figure 2, top).
    with SpotNoisePipeline(
        config, field, policy=LifeCyclePolicy.default_spot_noise()
    ) as pipe:
        default = pipe.step()
    write_pgm(os.path.join(HERE, "separation_default.pgm"), default.display)

    # Advected positions (figure 2, bottom): the spots drift onto the
    # attracting separation line and make it stand out.
    policy = LifeCyclePolicy(position_mode="advect", boundary="clamp")
    with SpotNoisePipeline(config, field, policy=policy) as pipe:
        for _ in range(300):
            pipe.advect()
        advected = pipe.step()
    write_pgm(os.path.join(HERE, "separation_advected.pgm"), advected.display)

    print("texture energy within the separation band (1/4 of the image):")
    print(f"  default parameters: {band_fraction(default.texture):.2f}")
    print(f"  advected positions: {band_fraction(advected.texture):.2f}")
    print("wrote separation_default.pgm and separation_advected.pgm")


if __name__ == "__main__":
    main()
