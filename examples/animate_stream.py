"""Streaming a steered smog animation through repro.anim.

Runs a short steering session (section 5.1), steers the wind mid-run,
then serves the recorded history twice through an
:class:`~repro.anim.service.AnimationService`:

1. a full replay — one incremental render walk, frames streamed from the
   iterator as they complete;
2. a scrub back over the same range — pure cache hits, zero renders.

Finally one frame is re-rendered one-shot (fresh pipeline, full prefix
replay) to show the streamed frame is bit-identical to it.
"""

import time

import numpy as np

from repro.anim import one_shot_frame
from repro.apps.smog.steering import SteeredSmogApplication
from repro.core.config import SpotNoiseConfig


def main() -> None:
    app = SteeredSmogApplication(nx=24, ny=24, n_sources=3, seed=1997)
    n_frames = 12
    for frame in range(n_frames):
        if frame == 6:
            app.steer("base_wind", 2.0)  # steer mid-sequence
        app.advance()

    config = SpotNoiseConfig(n_spots=400, texture_size=64, seed=0)
    with app.animation_service(config, length=app.frame, checkpoint_every=4) as svc:
        t0 = time.perf_counter()
        for response in svc.stream(0, n_frames):
            print(
                f"frame {response.frame:2d}: source={response.source:<9s} "
                f"latency={response.latency_s * 1e3:6.1f} ms"
            )
        replay_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        scrub = list(svc.stream(3, 9))
        scrub_s = time.perf_counter() - t0
        print(
            f"replay of {n_frames} frames: {replay_s * 1e3:.0f} ms "
            f"({svc.stats.renders} renders); "
            f"scrub of 6 cached frames: {scrub_s * 1e3:.1f} ms "
            f"({sum(1 for r in scrub if r.source == 'memory')} memory hits)"
        )

        reference = one_shot_frame(config, app.read_history, 9, dt=svc.dt)
        streamed = next(iter(svc.stream(9, 10))).texture
        print(
            "streamed frame 9 bit-identical to one-shot render:",
            "yes" if np.array_equal(streamed, reference.display) else "NO",
        )


if __name__ == "__main__":
    main()
