#!/usr/bin/env python
"""Browsing a DNS database (section 5.2, figure 7).

Computes a small turbulent-wake database with the Navier-Stokes substrate
(flow past a block, vortex shedding), stores it in the chunked field
store, then browses it the way the paper describes: select a
visualisation mapping first, then play through any part of the database —
here a window in the middle, then a seek back to the start.

Run:  python examples/turbulence_browser.py
Writes the database to ``examples/out_dns_db/`` and rendered frames to
``examples/out_dns/``.
"""

import os
import shutil

from repro import SpotNoiseConfig
from repro.apps.dns import (
    ChunkedFieldStore,
    DataBrowser,
    DNSConfig,
    DNSSolver,
    VisualizationMapping,
)
from repro.core import AnimationLoop, SpotNoisePipeline
from repro.core.config import BentConfig
from repro.fields.grid import RectilinearGrid
from repro.viz import diverging

HERE = os.path.dirname(os.path.abspath(__file__))
DB_DIR = os.path.join(HERE, "out_dns_db")


def build_database(n_frames: int = 16) -> ChunkedFieldStore:
    """Run the solver to a shedding state and record slices."""
    print("computing the DNS database (reduced grid, Re=150)...")
    solver = DNSSolver(DNSConfig(nx=139, ny=104, reynolds=150))
    solver.advance_to(12.0)  # spin-up past shedding onset

    if os.path.exists(DB_DIR):
        shutil.rmtree(DB_DIR)
    grid = RectilinearGrid(solver.grid.x_coords(), solver.grid.y_coords())
    store = ChunkedFieldStore.create(DB_DIR, grid, frames_per_chunk=8)
    for _ in range(n_frames):
        solver.advance_to(solver.time + 0.15)
        store.append(solver.field(), time=solver.time)
    store.flush()
    print(f"  {len(store)} slices, {store.nbytes_on_disk() / 1e6:.1f} MB on disk "
          "(the paper's database: a few terabytes)")
    return store


def main() -> None:
    store = build_database()

    # Step 1 of the browser workflow: select the visualisation mapping.
    browser = DataBrowser(store, VisualizationMapping(scalar="vorticity"))

    config = SpotNoiseConfig(
        n_spots=8000,
        texture_size=256,
        spot_mode="bent",
        bent=BentConfig(n_along=6, n_across=3, length_cells=3.0, width_cells=0.8),
        seed=2,
    )

    # Step 2: play through any part of the database.
    browser.seek(6)
    field, _ = browser.current()
    with SpotNoisePipeline(config, field) as pipe:
        loop = AnimationLoop(pipe, browser.frame_source, colormap=diverging())
        stats = loop.run(6)
        print(f"played frames 6..11 at {stats.textures_per_second:.2f} textures/s "
              "(steps 2+3, this host)")

        # Random access: jump back to the beginning.
        browser.seek(0)
        loop.run(2)

        out_dir = os.path.join(HERE, "out_dns")
        paths = loop.write_sequence(out_dir, prefix="wake")
        print(f"wrote {len(paths)} frames to {out_dir}/")

    # Bonus: the time series as a 3-D data set ("a slice from the three
    # dimensional data set").  A y-slice through the wake centreline is a
    # time line: the shedding period shows up as stripes along the t axis.
    from repro.apps.dns import SliceBrowser, space_time_volume
    from repro.fields.derived import magnitude_field
    from repro.spots.filtering import contrast_stretch
    from repro.viz import write_pgm

    volume = space_time_volume(store)
    slicer = SliceBrowser(volume, axis="y", index=volume.axis_size("y") // 2)
    timeline = slicer.current()
    speed = magnitude_field(timeline).data
    out = os.path.join(HERE, "out_dns", "timeline_y_mid.pgm")
    write_pgm(out, contrast_stretch(speed))
    print(f"wrote space-time slice {out} (x vs t through the wake centreline)")

    # And pathlines *through* the stored data: the database becomes an
    # unsteady velocity source via time interpolation.
    import numpy as np

    from repro.advection.unsteady import pathline_bundle
    from repro.fields import TimeInterpolatedField

    series = TimeInterpolatedField.from_store(store)
    seeds = np.stack([np.full(5, 0.5), np.linspace(1.0, 2.0, 5)], axis=-1)
    span = series.t_max - series.t_min
    paths = pathline_bundle(series.sampler(), seeds, series.t_min, span / 60, 60)
    lengths = np.hypot(*np.diff(paths, axis=1).transpose(2, 0, 1)).sum(axis=1)
    print(f"integrated {len(seeds)} pathlines through the stored time series; "
          f"mean path length {lengths.mean():.2f} domain units over t=[{series.t_min:.1f}, {series.t_max:.1f}]")


if __name__ == "__main__":
    main()
