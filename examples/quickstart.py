#!/usr/bin/env python
"""Quickstart: synthesise a spot noise texture of a vortex and save it.

Run:  python examples/quickstart.py

Produces ``quickstart_vortex.pgm`` (the flow texture) and
``quickstart_isotropic.pgm`` (the same spots without flow deformation)
next to this script, plus a one-line summary per texture.
"""

import os

from repro import SpotNoiseConfig, SpotNoiseSynthesizer
from repro.fields import vortex_field
from repro.viz import anisotropy_direction, write_pgm

HERE = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    field = vortex_field(omega=1.0, n=65)

    # Spot noise with flow-aligned spot stretching: the texture shows the
    # circular streamlines of the vortex.
    config = SpotNoiseConfig(
        n_spots=6000,
        texture_size=256,
        spot_mode="standard",
        anisotropy=2.0,
        profile="gaussian",
        seed=42,
    )
    with SpotNoiseSynthesizer(config) as synth:
        frame = synth.synthesize(field)
    out = os.path.join(HERE, "quickstart_vortex.pgm")
    write_pgm(out, frame.display)
    angle, strength = anisotropy_direction(frame.texture)
    print(f"wrote {out}")
    print(f"  {config.n_spots} spots, texture {frame.display.shape}, "
          f"local anisotropy strength {strength:.2f}")

    # The control: anisotropy 0 keeps the spots circular; the texture is
    # isotropic noise that shows no flow at all.
    with SpotNoiseSynthesizer(config.with_overrides(anisotropy=0.0)) as synth:
        frame0 = synth.synthesize(field)
    out0 = os.path.join(HERE, "quickstart_isotropic.pgm")
    write_pgm(out0, frame0.display)
    _, strength0 = anisotropy_direction(frame0.texture)
    print(f"wrote {out0}")
    print(f"  same spots, no deformation: anisotropy strength {strength0:.2f}")


if __name__ == "__main__":
    main()
