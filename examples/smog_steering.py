#!/usr/bin/env python
"""Computational steering of the smog model (section 5.1, figure 6).

Runs the atmospheric application on the paper's 53x55 grid: synthetic
European weather drives a pollutant transport model, the wind field is
shown as animated bent-spot noise, and the O3 plume is draped over it in
rainbow colours with the synthetic coastline on top.  Midway through, the
"user" steers the emissions up and rotates the wind — the interaction the
paper's interactivity makes possible.

Run:  python examples/smog_steering.py
Writes frames to ``examples/out_smog/``.
"""

import os

from repro import SpotNoiseConfig
from repro.apps.smog import SteeredSmogApplication, land_mask_raster
from repro.core import AnimationLoop, SpotNoisePipeline
from repro.core.config import BentConfig
from repro.viz import rainbow

HERE = os.path.dirname(os.path.abspath(__file__))


def main() -> None:
    app = SteeredSmogApplication(nx=53, ny=55, n_sources=6, seed=1997)

    config = SpotNoiseConfig(
        n_spots=2500,  # the paper's spot count
        texture_size=256,
        spot_mode="bent",
        bent=BentConfig(n_along=8, n_across=5, length_cells=4.0, width_cells=1.2),
        seed=1,
    )

    wind, _ = app.advance()
    mask = land_mask_raster(app.land, app.grid, config.texture_size)

    with SpotNoisePipeline(config, wind) as pipe:
        loop = AnimationLoop(pipe, app.frame_source, colormap=rainbow(), mask=mask)

        print("phase 1: baseline emissions, westerly wind")
        stats = loop.run(5)
        print(f"  {stats.n_frames} frames at {stats.textures_per_second:.2f} textures/s "
              "(steps 2+3, this host)")

        print("phase 2: steering — emissions x5, wind rotated 45 degrees")
        app.steer("emission_scale", 5.0)
        app.steer("wind_direction", 0.785)
        stats = loop.run(5)
        print(f"  {stats.n_frames} more frames; pollutant max now "
              f"{app.model.concentration.max():.3f}")

        out_dir = os.path.join(HERE, "out_smog")
        paths = loop.write_sequence(out_dir, prefix="smog")
        print(f"wrote {len(paths)} frames to {out_dir}/")
        print("steering journal:", app.session.journal)


if __name__ == "__main__":
    main()
