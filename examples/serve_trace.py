#!/usr/bin/env python
"""Serving textures from a DNS database under a Zipf request trace.

The browser example plays frames one by one; this one serves them the
way a deployment would: a small turbulent-wake database is computed and
stored, then a ``TextureService`` replays a Zipf-distributed trace — a
few hot frames dominating, the access pattern dashboards generate — with
four concurrent clients.  Identical requests hit the cache, concurrent
duplicates coalesce onto one in-flight render, and the run ends with the
serving report (hit rate, coalesce rate, latency percentiles) next to
the honest no-cache baseline.

Run:  python examples/serve_trace.py
Writes the database to ``examples/out_serve_db/`` and the disk cache
tier to ``examples/out_serve_cache/``.
"""

import os
import shutil

from repro import SpotNoiseConfig
from repro.apps.dns import ChunkedFieldStore, DNSConfig, DNSSolver
from repro.fields.grid import RectilinearGrid
from repro.service import FrameRenderer, TextureService, replay, replay_uncached, zipf_trace

HERE = os.path.dirname(os.path.abspath(__file__))
DB_DIR = os.path.join(HERE, "out_serve_db")
CACHE_DIR = os.path.join(HERE, "out_serve_cache")


def build_database(n_frames: int = 24) -> ChunkedFieldStore:
    """A reduced wake database (same substrate as the browser example)."""
    print("computing the DNS database (reduced grid, Re=150)...")
    solver = DNSSolver(DNSConfig(nx=70, ny=52, reynolds=150))
    solver.advance_to(6.0)  # spin-up past shedding onset

    if os.path.exists(DB_DIR):
        shutil.rmtree(DB_DIR)
    grid = RectilinearGrid(solver.grid.x_coords(), solver.grid.y_coords())
    store = ChunkedFieldStore.create(DB_DIR, grid, frames_per_chunk=8)
    for _ in range(n_frames):
        solver.advance_to(solver.time + 0.15)
        store.append(solver.field(), time=solver.time)
    store.flush()
    print(f"  {len(store)} slices, {store.nbytes_on_disk() / 1e6:.1f} MB on disk")
    return store


def main() -> None:
    store = build_database()
    config = SpotNoiseConfig(n_spots=2000, texture_size=128, seed=7)

    trace = zipf_trace(n_requests=200, n_frames=len(store), exponent=1.1, seed=1)
    distinct = len(set(trace))
    print(f"replaying a Zipf trace: 200 requests, {distinct} distinct frames, "
          "4 concurrent clients")

    if os.path.exists(CACHE_DIR):
        shutil.rmtree(CACHE_DIR)
    with TextureService.for_store(
        store, config, n_workers=2, disk_dir=CACHE_DIR
    ) as service:
        result = replay(service, trace, n_clients=4)
        print()
        print(service.stats.report())

    renderer = FrameRenderer(config)
    baseline = replay_uncached(
        lambda f: renderer.render(store.read(f)), trace[:40], n_clients=4
    )
    renderer.close()

    print()
    print(f"cached:   {result.throughput_rps:8.1f} requests/s "
          f"({result.renders} renders for {distinct} distinct frames)")
    print(f"no cache: {baseline.throughput_rps:8.1f} requests/s "
          f"(first {baseline.n_requests} requests, every one rendered)")
    print(f"speedup:  {result.throughput_rps / baseline.throughput_rps:.1f}x")
    print(f"disk tier: {len(os.listdir(CACHE_DIR))} entries in {CACHE_DIR}/ — "
          "a restarted service starts warm")


if __name__ == "__main__":
    main()
