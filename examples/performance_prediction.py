#!/usr/bin/env python
"""Predicting throughput on arbitrary workstation shapes.

Uses the calibrated Onyx2 machine model to regenerate the paper's
Tables 1 and 2, then answers the paper's own open question (footnote 3):
what would 16 processors and 4 pipes achieve?  Finally it sizes a custom
workload through the same model.

Run:  python examples/performance_prediction.py
"""

from repro import SpotNoiseConfig, SpotNoiseSynthesizer
from repro.fields import random_smooth_field
from repro.machine import SpotWorkload, WorkstationConfig, simulate_texture
from repro.machine.schedule import format_table, sweep_configurations


def main() -> None:
    for name, workload in (
        ("Table 1 (atmospheric pollution)", SpotWorkload.atmospheric()),
        ("Table 2 (turbulent flow)", SpotWorkload.turbulence()),
    ):
        print(f"{name} — modelled textures/second:")
        print(format_table(sweep_configurations(workload)))
        print()

    # Footnote 3: "We expect, but have not verified, that when using 4
    # graphics pipes an optimal performance will be achieved by using 16
    # processors."  The model can verify it:
    w1 = SpotWorkload.atmospheric()
    for n_proc in (8, 12, 16, 20, 24):
        r = simulate_texture(WorkstationConfig(n_proc, 4), w1)
        print(f"  {n_proc:2d} processors x 4 pipes: {r.textures_per_second:5.2f} tex/s")
    print("(the knee sits near 16 processors, as the authors expected)\n")

    # A custom configuration through the high-level API.
    field = random_smooth_field(seed=0, n=96)
    config = SpotNoiseConfig.turbulence(n_spots=10_000)
    with SpotNoiseSynthesizer(config) as synth:
        result = synth.predict_timing(field, n_processors=8, n_pipes=4)
    print(f"custom workload (10k bent spots): {result.textures_per_second:.2f} tex/s "
          f"on the full Onyx2, bus {result.bus_bandwidth_used_Bps / 1e6:.0f} MB/s")


if __name__ == "__main__":
    main()
